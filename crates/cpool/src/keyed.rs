//! Distinguishable elements: a pool keyed by element class.
//!
//! The second open question of §5: "How might pools be extended to handle
//! distinguishable elements?" This module answers it with a [`KeyedPool`]:
//! every element carries a key, and a remove may ask for *any* element or
//! for an element of a *specific* key.
//!
//! # Design
//!
//! Each segment partitions its contents by key (a `BTreeMap` of buckets —
//! ordered, so iteration is deterministic and virtual-time runs reproduce).
//! The concurrent-pool locality story carries over per key:
//!
//! * `add(k, v)` goes to the local segment's `k` bucket;
//! * `try_remove_key(k)` serves from the local `k` bucket, and only when
//!   that is empty searches remote segments — stealing **⌈n/2⌉ of the
//!   victim's `k` bucket** (the paper's rule, applied bucket-wise, so the
//!   reserve it builds is a reserve of the key the process actually wants);
//! * `try_remove_any` serves any local element, and when the local segment
//!   is empty steals half of the *largest* bucket of the first non-empty
//!   victim — taking the biggest bucket preserves the locality of the
//!   victim's other keys while still balancing bulk.
//!
//! Searches use the **linear algorithm**: the paper's own conclusion is
//! that "the linear or the random search algorithm may suffice and provide
//! better performance" (§5), and the tree's round counters do not compose
//! with per-key emptiness (a subtree empty *for key A* is not empty for
//! key B, so one shared counter per node would mislead other keys'
//! searches — one tree per key would cost `k · n` counters). Each process
//! remembers where it last found each key, the keyed analogue of
//! `LastFound`.
//!
//! Transfers ride the same batch-typed machinery as the plain pool
//! ([`transfer`](crate::transfer)): steals fill a recycled vector shell
//! from a pool-wide free list and refills return it, and a bucket emptied
//! by removes or steals stays resident so its capacity (and its map node)
//! is reused by the next add of that key — the steady-state keyed
//! steal/refill cycle allocates nothing (asserted by
//! `tests/alloc_steal.rs`). Residency is bounded per segment (64 buckets;
//! beyond that emptied buckets are evicted so occupancy scans stay
//! bounded under ephemeral-key workloads); a [`PoolOps::drain`] releases
//! everything.
//!
//! Livelock on exhausted keys is broken by the same §3.2 gate as the plain
//! pool: a keyed search aborts when every registered process is searching —
//! whether they starve on the same key or different ones, nobody can be
//! adding, so waiting is futile. Registration, the lap-counted gate-abort,
//! the two-phase steal-half transfer, and stats plumbing are all delegated
//! to the shared `core` engine — the same hot path the plain
//! [`Pool`](crate::Pool) runs — so this module only supplies the keyed
//! element model and the per-key search cursors.
//!
//! # Hot keys
//!
//! Uniform key traffic spreads naturally over segments, but a Zipfian
//! stream funnels most operations through one or two buckets, and every
//! producer and consumer of a hot key then serializes on the owning
//! segment's lock. The keyed frontend reacts adaptively:
//!
//! * a pool-wide sampled frequency detector ([`hotkey`](crate::hotkey))
//!   watches one in `sample_every` operations per handle;
//! * when a key's share of the sample window crosses the promote
//!   threshold, its bucket is **split** into `K` independently locked
//!   sub-shards (`HotBucket`, crate-internal): adds rotate across sub-shards, removes
//!   drain any, and handles cache the split bucket so hot-key traffic
//!   bypasses the segment lock entirely;
//! * steal-half applies **sub-shard-wise** (⌈n/2⌉ of each sub-shard, one
//!   shard lock at a time, never the segment lock), filling the same
//!   recycled transfer shells as plain steals — the zero-copy batch
//!   currency and the alloc-free steady state are preserved;
//! * the largest-bucket victim policy for anonymous steals becomes
//!   **heat-weighted**: victims rank by `len × (1 + boost · heat)`, so
//!   thieves relieve the actual contention point, not just the deepest
//!   bucket;
//! * when the detector's window shows the key has cooled below the demote
//!   threshold (hysteresis — see [`HotKeyConfig`]), the sub-shards are
//!   **merged back** into a plain bucket. Close/timeout semantics are
//!   unaffected: segment occupancy counts include sub-shard contents, so
//!   drained snapshots and wake filters see through a split.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::core::{OpTimer, Registry, SearchSession, WaitCtl};
use crate::error::RemoveError;
use crate::hotkey::{HotKeyConfig, HotKeyDetector};
use crate::ids::{ProcId, SegIdx};
use crate::magazine::{CacheOutcome, Depot, MagazineCache, PopOutcome};
use crate::notify::Notifier;
use crate::ops::{PoolOps, SmallDrain, WaitStrategy};
use crate::segment::steal_count;
use crate::stats::{PoolStats, ProcStats};
use crate::timing::{NullTiming, Resource, Timing};
use crate::transfer::{FreeList, SHELL_SPILL_MAX, SHELL_SPILL_MIN};

/// Keys must be orderable (deterministic bucket iteration), cloneable
/// (buckets store them), and sendable across worker threads.
pub trait Key: Ord + Clone + Send + 'static {}
impl<K: Ord + Clone + Send + 'static> Key for K {}

/// Default for the most buckets a segment keeps resident while *empty*
/// (see [`KeyedPoolBuilder::resident_buckets_max`]). Above the bound, an
/// emptied bucket is evicted instead: occupancy scans
/// ([`KeyedSegment::remove_any`]) walk past resident empties, so an
/// unbounded ephemeral-key workload would otherwise degrade every remove
/// (and its lock hold time) linearly with the keys ever seen. Live
/// (non-empty) buckets never count against the bound.
const RESIDENT_BUCKETS_MAX: usize = 64;

/// Weight of observed heat in the anonymous-steal victim ranking: buckets
/// score `len × (1 + HEAT_STEAL_BOOST × heat)` with heat in `[0, 1]`, so a
/// bucket drawing the whole sample window outranks a cold bucket up to
/// five times its size — thieves relieve the contention point, not merely
/// the deepest bucket. With no detector (or no samples) every heat is 0
/// and the ranking degenerates to the original largest-bucket rule.
const HEAT_STEAL_BOOST: f64 = 4.0;

/// Entries a handle's hot-bucket cache may hold before it is reset; the
/// cache repopulates from sampled operations, so a reset only costs a few
/// slow-path (segment-locked) operations per hot key.
const HOT_CACHE_MAX: usize = 16;

/// One in this many *sampled* operations also runs the hysteresis
/// (demote) sweep. The sweep locks the segment and probes the detector
/// once per split bucket; heat decay only needs to be eventual, so it
/// runs at `sample_every × SWEEP_EVERY_SAMPLES` op granularity per
/// handle rather than on every sample.
const SWEEP_EVERY_SAMPLES: u32 = 8;

/// One bucket: a plain vector, or — once promoted by the hot-key detector
/// — `K` independently locked sub-shards.
enum Bucket<V> {
    Plain(Vec<V>),
    Hot(Arc<HotBucket<V>>),
}

impl<V> Bucket<V> {
    fn len(&self) -> usize {
        match self {
            Bucket::Plain(bucket) => bucket.len(),
            Bucket::Hot(hot) => hot.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A promoted (split) bucket: `K` sub-shards, each behind its own lock, so
/// hot-key producers and consumers stop serializing on one vector — and,
/// via the handles' caches, on the segment lock itself. The cached total
/// makes emptiness probes lock-free. Handles address sub-shards by their
/// process slot (affinity: distinct processes, distinct shards, and a
/// process's pops probe its own pushes' shard first); segment-internal
/// routed operations rotate via the cursors so the shards stay balanced
/// without coordination.
///
/// Demotion (and teardown) *seals* each sub-shard under its lock; a sealed
/// shard refuses pushes and reports pops as sealed, which tells stale
/// cached handles to drop the reference and retake the segment-locked
/// path. Elements only ever move under a shard lock, so a split or merge
/// racing live traffic can neither lose nor duplicate them.
struct HotBucket<V> {
    shards: Box<[Shard<V>]>,
    add_cursor: AtomicUsize,
    remove_cursor: AtomicUsize,
}

/// One sub-shard: the element vector behind its own lock, flanked by two
/// lock-free mirrors so the fast paths and occupancy probes never touch a
/// lock they don't need. Padded to a cache line: sub-shards sit adjacent
/// in one slab, and the whole point of the split is that processes on
/// different shards stop invalidating each other's lines.
#[repr(align(64))]
struct Shard<V> {
    items: Mutex<Vec<V>>,
    /// `items.len()` mirror, written with a plain store while the shard
    /// lock is held (one writer at a time, so no read-modify-write): pops
    /// skip empty shards and occupancy sums read it without locking.
    len: AtomicUsize,
    /// Sticky seal flag, set under the shard lock by demotion/teardown
    /// (a `HotBucket` is never unsealed — promotion builds a fresh one),
    /// so the lock-free read can trust `true` outright; `false` is
    /// re-checked under the lock before mutating.
    sealed: AtomicBool,
}

impl<V> HotBucket<V> {
    /// Builds a `k`-shard bucket, dealing `items` round-robin so the
    /// shards start balanced. `k` is rounded up to a power of two so
    /// shard selection is a mask, not a hardware divide — the selection
    /// runs on every hot-path operation.
    fn new(k: usize, items: Vec<V>) -> Self {
        let k = k.next_power_of_two();
        let mut dealt: Vec<Vec<V>> = (0..k).map(|_| Vec::new()).collect();
        for (i, value) in items.into_iter().enumerate() {
            dealt[i % k].push(value);
        }
        HotBucket {
            shards: dealt
                .into_iter()
                .map(|items| Shard {
                    len: AtomicUsize::new(items.len()),
                    sealed: AtomicBool::new(false),
                    items: Mutex::new(items),
                })
                .collect(),
            add_cursor: AtomicUsize::new(0),
            remove_cursor: AtomicUsize::new(0),
        }
    }

    /// Shard-index mask: the shard count is always a power of two, so
    /// `index & mask()` replaces `index % len` on the hot paths.
    fn mask(&self) -> usize {
        self.shards.len() - 1
    }

    /// Occupancy: the sum of the per-shard mirrors. Exact when quiescent,
    /// momentarily stale against in-flight shard operations — callers
    /// treat it as a hint (steal sizing, emptiness scans that re-check).
    fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.len.load(Ordering::Acquire)).sum()
    }
}

/// Outcome of a pop attempt against a [`HotBucket`].
enum HotPop<V> {
    Got(V),
    /// Every sub-shard was empty (and unsealed): the bucket holds nothing.
    Empty,
    /// A sealed sub-shard was seen: the bucket is being (or has been)
    /// demoted — retake the segment-locked path.
    Sealed,
}

/// The bucket map plus an exact count of its resident *empty* plain
/// buckets, kept in lockstep so the residency policy never has to scan,
/// and the segment-local event counters the pool aggregates into
/// [`PoolCounters`]. Hot buckets never count as empties: they stay
/// resident (and split) until the detector demotes them.
struct Buckets<K, V> {
    map: BTreeMap<K, Bucket<V>>,
    empties: usize,
    resident_max: usize,
    evictions: u64,
    promotions: u64,
    demotions: u64,
    /// The keys currently split, kept in lockstep with `map` so the
    /// hysteresis sweep touches only the (few) hot buckets instead of
    /// scanning the whole key space on every sampled operation.
    hot_keys: Vec<K>,
}

impl<K: Key, V> Buckets<K, V> {
    /// Routes an add under the segment lock: plain (or new) buckets take
    /// the value here; a hot bucket hands back its split handle so the
    /// push happens under a sub-shard lock instead.
    #[allow(clippy::type_complexity)]
    fn route_add(&mut self, key: K, value: V) -> Result<(), (K, Arc<HotBucket<V>>, V)> {
        if let Some(bucket) = self.map.get_mut(&key) {
            match bucket {
                Bucket::Plain(bucket) => {
                    if bucket.is_empty() {
                        self.empties -= 1;
                    }
                    bucket.push(value);
                }
                Bucket::Hot(hot) => return Err((key, Arc::clone(hot), value)),
            }
            return Ok(());
        }
        self.map.insert(key, Bucket::Plain(vec![value]));
        Ok(())
    }

    /// The plain bucket for `key`, creating it if absent and fixing the
    /// empties count if a resident empty bucket is being brought back into
    /// use. Callers route hot buckets away first.
    fn plain_bucket_for(&mut self, key: K) -> &mut Vec<V> {
        match self.map.entry(key) {
            std::collections::btree_map::Entry::Occupied(entry) => match entry.into_mut() {
                Bucket::Plain(bucket) => {
                    if bucket.is_empty() {
                        self.empties -= 1;
                    }
                    bucket
                }
                Bucket::Hot(_) => unreachable!("hot buckets are routed before plain_bucket_for"),
            },
            std::collections::btree_map::Entry::Vacant(entry) => {
                match entry.insert(Bucket::Plain(Vec::new())) {
                    Bucket::Plain(bucket) => bucket,
                    Bucket::Hot(_) => unreachable!("entry was just inserted as Plain"),
                }
            }
        }
    }

    /// The residency policy in one place: a plain bucket that an operation
    /// just emptied stays resident (capacity + map node reuse) unless the
    /// segment already hoards `resident_max` empty buckets, in which case
    /// it is evicted (and counted).
    fn settle_emptied(&mut self, key: &K, emptied: bool) {
        if !emptied {
            return;
        }
        if self.empties >= self.resident_max {
            self.map.remove(key);
            self.evictions += 1;
        } else {
            self.empties += 1;
        }
    }

    /// Splits `key`'s bucket into `k` sub-shards (idempotent: an already
    /// split bucket just returns its handle; an absent key splits an empty
    /// bucket pre-emptively). Elements move under the segment lock, so no
    /// operation can observe the key mid-split.
    fn promote(&mut self, key: &K, k: usize) -> Arc<HotBucket<V>> {
        let items = match self.map.get_mut(key) {
            Some(Bucket::Hot(hot)) => return Arc::clone(hot),
            Some(Bucket::Plain(bucket)) => {
                if bucket.is_empty() {
                    self.empties -= 1;
                }
                std::mem::take(bucket)
            }
            None => Vec::new(),
        };
        let hot = Arc::new(HotBucket::new(k, items));
        self.map.insert(key.clone(), Bucket::Hot(Arc::clone(&hot)));
        self.hot_keys.push(key.clone());
        self.promotions += 1;
        hot
    }

    /// Merges `key`'s sub-shards back into a plain bucket, sealing each
    /// shard under its lock so stale cached handles fall back to the
    /// segment-locked path (which now sees the plain bucket). An emptied
    /// hot bucket lands under the normal residency policy.
    fn demote(&mut self, key: &K) -> bool {
        let hot = match self.map.get(key) {
            Some(Bucket::Hot(hot)) => Arc::clone(hot),
            _ => return false,
        };
        let mut merged: Vec<V> = Vec::new();
        for shard in hot.shards.iter() {
            let mut items = shard.items.lock();
            shard.sealed.store(true, Ordering::Release);
            shard.len.store(0, Ordering::Release);
            if merged.is_empty() {
                // Reuse the first non-empty shard's grown capacity.
                merged = std::mem::take(&mut items);
            } else {
                merged.append(&mut items);
            }
        }
        self.hot_keys.retain(|k| k != key);
        self.demotions += 1;
        if merged.is_empty() {
            self.map.remove(key);
            if self.empties >= self.resident_max {
                self.evictions += 1;
            } else {
                self.map.insert(key.clone(), Bucket::Plain(merged));
                self.empties += 1;
            }
        } else {
            self.map.insert(key.clone(), Bucket::Plain(merged));
        }
        true
    }
}

/// One segment: per-key buckets plus a cached total for cheap emptiness
/// probes.
///
/// A bucket emptied by removes or steals **stays resident** (an empty
/// vector under its key) instead of being evicted from the map — up to
/// `resident_max` empty buckets (default [`RESIDENT_BUCKETS_MAX`]): the
/// next add or refill of that key reuses the bucket's grown capacity and
/// the map's existing node, so the steady-state keyed steal/refill cycle
/// allocates nothing. Beyond the bound emptied buckets are evicted
/// (ephemeral-key workloads trade the allocation-free property for bounded
/// scans); [`drain_all`](Self::drain_all) releases everything. All
/// occupancy checks skip empty buckets.
///
/// Hot (split) buckets are handled in two halves: locating one takes the
/// segment lock briefly (or no lock at all, via a handle's cache), while
/// the actual element movement happens under the sub-shard locks — see
/// [`HotBucket`].
struct KeyedSegment<K, V> {
    buckets: Mutex<Buckets<K, V>>,
    len: AtomicUsize,
    /// Lock-free mirror of `buckets.hot_keys.len()` (written while the
    /// buckets lock is held): the hysteresis sweep's early-out, so a
    /// segment with no split buckets pays one relaxed load per sample.
    hot_gauge: AtomicUsize,
}

impl<K: Key, V: Send + 'static> KeyedSegment<K, V> {
    fn new(resident_max: usize) -> Self {
        KeyedSegment {
            buckets: Mutex::new(Buckets {
                map: BTreeMap::new(),
                empties: 0,
                resident_max,
                evictions: 0,
                promotions: 0,
                demotions: 0,
                hot_keys: Vec::new(),
            }),
            len: AtomicUsize::new(0),
            hot_gauge: AtomicUsize::new(0),
        }
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    fn key_len(&self, key: &K) -> usize {
        self.buckets.lock().map.get(key).map_or(0, Bucket::len)
    }

    /// Pushes into one sub-shard of a hot bucket, without the segment
    /// lock. `at` picks the shard (mod the shard count): handles pass
    /// their process slot, so concurrent processes land on distinct
    /// shards and a process's own pops find its pushes first; routed
    /// segment-internal adds rotate via the bucket's cursor instead.
    /// `Err` hands the value back when the shard is sealed — a demotion
    /// raced; retake the routed path, which now sees a plain bucket.
    fn hot_push(&self, hot: &HotBucket<V>, value: V, at: usize) -> Result<(), V> {
        let shard = &hot.shards[at & hot.mask()];
        let mut items = shard.items.lock();
        if shard.sealed.load(Ordering::Relaxed) {
            return Err(value);
        }
        items.push(value);
        // Both occupancy mirrors move while the shard lock is held, so a
        // demotion or drain that later seals this shard observes them.
        shard.len.store(items.len(), Ordering::Release);
        self.len.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Pops from the first non-empty sub-shard, probing every shard in
    /// ring order from `start` (removes drain any sub-shard), without the
    /// segment lock. Handles start at their process slot — the shard
    /// their own pushes land on — so the steady-state pop is a single
    /// lock acquisition; segment-internal removes rotate via the bucket's
    /// cursor.
    fn hot_pop(&self, hot: &HotBucket<V>, start: usize) -> HotPop<V> {
        let mask = hot.mask();
        let mut saw_sealed = false;
        for i in 0..hot.shards.len() {
            let shard = &hot.shards[(start + i) & mask];
            // Lock-free pre-checks: a sealed flag is sticky, and an empty
            // shard's len mirror says so — neither needs the lock (a push
            // racing past the mirror read linearizes after this pop).
            if shard.sealed.load(Ordering::Acquire) {
                saw_sealed = true;
                continue;
            }
            if shard.len.load(Ordering::Acquire) == 0 {
                continue;
            }
            let mut items = shard.items.lock();
            if shard.sealed.load(Ordering::Relaxed) {
                saw_sealed = true;
                continue;
            }
            if let Some(value) = items.pop() {
                shard.len.store(items.len(), Ordering::Release);
                self.len.fetch_sub(1, Ordering::AcqRel);
                return HotPop::Got(value);
            }
        }
        if saw_sealed {
            HotPop::Sealed
        } else {
            HotPop::Empty
        }
    }

    /// Deals a bulk refill across unsealed sub-shards in balanced chunks.
    /// Returns `false` — with the undelivered remainder left in `values` —
    /// only when every sub-shard is sealed (a demotion raced).
    fn hot_push_bulk(&self, hot: &HotBucket<V>, values: &mut Vec<V>) -> bool {
        let k = hot.shards.len();
        let start = hot.add_cursor.fetch_add(1, Ordering::Relaxed) % k;
        let per = values.len().div_ceil(k).max(1);
        let mut pushed = 0;
        let mut progressed = true;
        while !values.is_empty() && progressed {
            progressed = false;
            for i in 0..k {
                if values.is_empty() {
                    break;
                }
                let shard = &hot.shards[(start + i) % k];
                let mut items = shard.items.lock();
                if shard.sealed.load(Ordering::Relaxed) {
                    continue;
                }
                let take = per.min(values.len());
                let at = values.len() - take;
                items.extend(values.drain(at..));
                shard.len.store(items.len(), Ordering::Release);
                self.len.fetch_add(take, Ordering::AcqRel);
                pushed += take;
                progressed = true;
            }
        }
        let _ = pushed;
        values.is_empty()
    }

    /// Steal-half, sub-shard-wise: ⌈s/2⌉ of *each* unsealed sub-shard
    /// (`s` = its size), one shard lock at a time and never the segment
    /// lock, into one transfer shell — so a hot victim keeps serving its
    /// other sub-shards while being robbed.
    fn hot_steal_half(&self, hot: &HotBucket<V>, shells: &FreeList<Vec<V>>) -> Vec<V> {
        let expected = steal_count(hot.len());
        if expected == 0 {
            return Vec::new();
        }
        let mut stolen = if expected < SHELL_SPILL_MIN {
            Vec::with_capacity(expected)
        } else {
            shells.take().unwrap_or_default()
        };
        for shard in hot.shards.iter() {
            if shard.sealed.load(Ordering::Acquire) || shard.len.load(Ordering::Acquire) == 0 {
                continue;
            }
            let mut items = shard.items.lock();
            if shard.sealed.load(Ordering::Relaxed) {
                continue;
            }
            let take = steal_count(items.len());
            if take == 0 {
                continue;
            }
            let at = items.len() - take;
            stolen.extend(items.drain(at..));
            shard.len.store(items.len(), Ordering::Release);
            self.len.fetch_sub(take, Ordering::AcqRel);
        }
        stolen
    }

    fn add(&self, key: K, value: V) {
        let mut key = key;
        let mut value = value;
        loop {
            let (k, hot, v) = {
                let mut buckets = self.buckets.lock();
                match buckets.route_add(key, value) {
                    Ok(()) => {
                        self.len.fetch_add(1, Ordering::AcqRel);
                        return;
                    }
                    Err(routed) => routed,
                }
            };
            let at = hot.add_cursor.fetch_add(1, Ordering::Relaxed);
            match self.hot_push(&hot, v, at) {
                Ok(()) => return,
                // Sealed: the bucket was demoted between routing and the
                // push — the retried route lands in the plain bucket.
                Err(v) => {
                    key = k;
                    value = v;
                }
            }
        }
    }

    fn add_bulk(&self, key: &K, mut values: Vec<V>, shells: &FreeList<Vec<V>>) {
        while !values.is_empty() {
            let hot = {
                let mut buckets = self.buckets.lock();
                match buckets.map.get(key) {
                    Some(Bucket::Hot(hot)) => Arc::clone(hot),
                    _ => {
                        let n = values.len();
                        buckets.plain_bucket_for(key.clone()).append(&mut values);
                        self.len.fetch_add(n, Ordering::AcqRel);
                        break;
                    }
                }
            };
            // Sub-shard-wise refill, off the segment lock; a raced
            // demotion (all shards sealed) loops back to the plain path.
            if self.hot_push_bulk(&hot, &mut values) {
                break;
            }
        }
        // The drained transfer shell goes back to the pool for the next
        // bulk steal (lock released first; recycling needs no segment
        // state). Undersized shells are not worth the round trip;
        // oversized ones would pin unbounded memory.
        if (SHELL_SPILL_MIN..=SHELL_SPILL_MAX).contains(&values.capacity()) {
            shells.put(values);
        }
    }

    fn remove_any(&self) -> Option<(K, V)> {
        loop {
            let (key, hot) = {
                let mut buckets = self.buckets.lock();
                // First *non-empty* key in order: deterministic; empty
                // buckets are resident capacity, not occupancy.
                let (key, bucket) =
                    buckets.map.iter_mut().find(|(_, bucket)| !bucket.is_empty())?;
                let key = key.clone();
                match bucket {
                    Bucket::Plain(bucket) => {
                        let value = bucket.pop().expect("bucket observed non-empty");
                        let emptied = bucket.is_empty();
                        buckets.settle_emptied(&key, emptied);
                        self.len.fetch_sub(1, Ordering::AcqRel);
                        return Some((key, value));
                    }
                    Bucket::Hot(hot) => (key, Arc::clone(hot)),
                }
            };
            let start = hot.remove_cursor.fetch_add(1, Ordering::Relaxed);
            match self.hot_pop(&hot, start) {
                HotPop::Got(value) => return Some((key, value)),
                // Raced empty or mid-demotion: rescan — the occupancy
                // mirror has moved on, so the scan converges.
                HotPop::Empty | HotPop::Sealed => continue,
            }
        }
    }

    fn remove_key(&self, key: &K) -> Option<V> {
        loop {
            let hot = {
                let mut buckets = self.buckets.lock();
                match buckets.map.get_mut(key)? {
                    Bucket::Plain(bucket) => {
                        let value = bucket.pop()?;
                        let emptied = bucket.is_empty();
                        buckets.settle_emptied(key, emptied);
                        self.len.fetch_sub(1, Ordering::AcqRel);
                        return Some(value);
                    }
                    Bucket::Hot(hot) => Arc::clone(hot),
                }
            };
            let start = hot.remove_cursor.fetch_add(1, Ordering::Relaxed);
            match self.hot_pop(&hot, start) {
                HotPop::Got(value) => return Some(value),
                HotPop::Empty => return None,
                // Demotion moved the elements back to a plain bucket.
                HotPop::Sealed => continue,
            }
        }
    }

    /// The shared tail of both keyed steals *for plain buckets*: drains
    /// ⌈b/2⌉ of `key`'s bucket into a transfer vector (a recycled shell
    /// for bulk steals; tiny ones take the allocator's small-size fast
    /// path instead of a free-list round trip), settles bucket residency,
    /// and fixes the cached length. `None` if the bucket is absent, empty,
    /// or hot (callers route hot buckets to
    /// [`hot_steal_half`](Self::hot_steal_half)).
    fn steal_tail(
        &self,
        buckets: &mut Buckets<K, V>,
        key: &K,
        shells: &FreeList<Vec<V>>,
    ) -> Option<Vec<V>> {
        let Bucket::Plain(bucket) = buckets.map.get_mut(key)? else {
            return None;
        };
        let take = steal_count(bucket.len());
        if take == 0 {
            return None;
        }
        let at = bucket.len() - take;
        let mut stolen = if take < SHELL_SPILL_MIN {
            Vec::with_capacity(take)
        } else {
            shells.take().unwrap_or_default()
        };
        stolen.extend(bucket.drain(at..));
        let emptied = bucket.is_empty();
        buckets.settle_emptied(key, emptied);
        self.len.fetch_sub(take, Ordering::AcqRel);
        Some(stolen)
    }

    /// Steals ⌈b/2⌉ of the `key` bucket (`b` = its size), filling a
    /// recycled transfer shell. Hot buckets are robbed sub-shard-wise,
    /// off the segment lock.
    fn steal_half_key(&self, key: &K, shells: &FreeList<Vec<V>>) -> Vec<V> {
        let hot = {
            let mut buckets = self.buckets.lock();
            match buckets.map.get(key) {
                Some(Bucket::Hot(hot)) => Arc::clone(hot),
                _ => return self.steal_tail(&mut buckets, key, shells).unwrap_or_default(),
            }
        };
        self.hot_steal_half(&hot, shells)
    }

    /// Steals ⌈b/2⌉ of the highest-scoring non-empty bucket (ties:
    /// smallest key), returning the key alongside the elements. The score
    /// is heat-weighted occupancy — `len × (1 + boost × heat)` — so under
    /// skew the *contended* bucket is robbed, which both balances load and
    /// seeds the thief's own reserve of the key most likely to be asked
    /// for next; with no heat it degenerates to the plain largest-bucket
    /// rule.
    fn steal_half_largest(
        &self,
        shells: &FreeList<Vec<V>>,
        heat: &dyn Fn(&K) -> f64,
    ) -> Option<(K, Vec<V>)> {
        let (key, hot) = {
            let mut buckets = self.buckets.lock();
            let score = |key: &K, bucket: &Bucket<V>| {
                bucket.len() as f64 * (1.0 + HEAT_STEAL_BOOST * heat(key))
            };
            let key = buckets
                .map
                .iter()
                .filter(|(_, bucket)| !bucket.is_empty())
                .max_by(|a, b| {
                    score(a.0, a.1)
                        .partial_cmp(&score(b.0, b.1))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| b.0.cmp(a.0))
                })?
                .0
                .clone();
            match buckets.map.get(&key) {
                Some(Bucket::Hot(hot)) => (key, Arc::clone(hot)),
                _ => {
                    let stolen = self
                        .steal_tail(&mut buckets, &key, shells)
                        .expect("key just observed non-empty");
                    return Some((key, stolen));
                }
            }
        };
        let stolen = self.hot_steal_half(&hot, shells);
        Some((key, stolen))
    }

    /// Adds a mixed-key batch under one lock acquisition (the keyed side of
    /// `PoolOps::add_batch`); values bound for hot buckets are pushed
    /// afterwards under their sub-shard locks.
    fn add_bulk_mixed(&self, pairs: Vec<(K, V)>) {
        if pairs.is_empty() {
            return;
        }
        let mut deferred: Vec<(K, Arc<HotBucket<V>>, V)> = Vec::new();
        let mut landed = 0;
        {
            let mut buckets = self.buckets.lock();
            for (key, value) in pairs {
                match buckets.route_add(key, value) {
                    Ok(()) => landed += 1,
                    Err(routed) => deferred.push(routed),
                }
            }
        }
        if landed > 0 {
            self.len.fetch_add(landed, Ordering::AcqRel);
        }
        for (key, hot, value) in deferred {
            let at = hot.add_cursor.fetch_add(1, Ordering::Relaxed);
            if let Err(value) = self.hot_push(&hot, value, at) {
                // Sealed (demotion raced): the retried add routes plain.
                self.add(key, value);
            }
        }
    }

    /// Removes up to `n` elements (first keys first, deterministically)
    /// under one lock acquisition; hot buckets drain sub-shard-wise under
    /// their shard locks (segment lock before shard lock is the crate-wide
    /// order).
    fn remove_up_to(&self, n: usize) -> Vec<(K, V)> {
        if n == 0 {
            return Vec::new();
        }
        let mut buckets = self.buckets.lock();
        let mut out = Vec::new();
        let mut newly_empty = 0;
        'keys: for (key, bucket) in buckets.map.iter_mut() {
            match bucket {
                Bucket::Plain(bucket) => {
                    let had_elements = !bucket.is_empty();
                    while let Some(value) = bucket.pop() {
                        out.push((key.clone(), value));
                        if out.len() >= n {
                            if bucket.is_empty() && had_elements {
                                newly_empty += 1;
                            }
                            break 'keys;
                        }
                    }
                    if had_elements {
                        newly_empty += 1;
                    }
                }
                Bucket::Hot(hot) => {
                    'shards: for shard in hot.shards.iter() {
                        let mut items = shard.items.lock();
                        if shard.sealed.load(Ordering::Relaxed) {
                            continue;
                        }
                        while let Some(value) = items.pop() {
                            out.push((key.clone(), value));
                            if out.len() >= n {
                                shard.len.store(items.len(), Ordering::Release);
                                break 'shards;
                            }
                        }
                        shard.len.store(items.len(), Ordering::Release);
                    }
                    if out.len() >= n {
                        break 'keys;
                    }
                    // An emptied hot bucket stays resident (and split)
                    // until the detector demotes it.
                }
            }
        }
        buckets.empties += newly_empty;
        if buckets.empties > buckets.resident_max {
            // Evict only the excess above the bound, matching the per-op
            // policy in `settle_emptied` — a batched remove must not purge
            // every hot key's retained capacity in one sweep. Only empty
            // *plain* buckets are candidates.
            let mut excess = buckets.empties - buckets.resident_max;
            let mut evicted = 0;
            buckets.map.retain(|_, bucket| {
                if excess > 0 && matches!(bucket, Bucket::Plain(b) if b.is_empty()) {
                    excess -= 1;
                    evicted += 1;
                    false
                } else {
                    true
                }
            });
            buckets.evictions += evicted;
            buckets.empties = buckets.resident_max;
        }
        self.len.fetch_sub(out.len(), Ordering::AcqRel);
        out
    }

    /// Removes every element under one lock acquisition. This is the one
    /// operation that also evicts the resident buckets (and their retained
    /// capacity): a drain is a teardown, not steady-state traffic. Hot
    /// buckets are sealed shard-by-shard so a stale cached handle cannot
    /// push into an orphaned bucket — its retry re-routes through the map.
    fn drain_all(&self) -> Vec<(K, V)> {
        let mut buckets = self.buckets.lock();
        let mut out = Vec::new();
        for (key, bucket) in std::mem::take(&mut buckets.map) {
            match bucket {
                Bucket::Plain(values) => {
                    out.extend(values.into_iter().map(|v| (key.clone(), v)));
                }
                Bucket::Hot(hot) => {
                    for shard in hot.shards.iter() {
                        let mut items = shard.items.lock();
                        shard.sealed.store(true, Ordering::Release);
                        shard.len.store(0, Ordering::Release);
                        out.extend(items.drain(..).map(|v| (key.clone(), v)));
                    }
                }
            }
        }
        buckets.empties = 0;
        buckets.hot_keys.clear();
        self.hot_gauge.store(0, Ordering::Release);
        self.len.fetch_sub(out.len(), Ordering::AcqRel);
        out
    }

    /// Splits `key`'s bucket into `k` sub-shards (idempotent); returns the
    /// split bucket for caching.
    fn promote(&self, key: &K, k: usize) -> Arc<HotBucket<V>> {
        let mut buckets = self.buckets.lock();
        let hot = buckets.promote(key, k);
        self.hot_gauge.store(buckets.hot_keys.len(), Ordering::Release);
        hot
    }

    /// Merges `key`'s sub-shards back into a plain bucket; `false` if the
    /// key is not split here.
    fn demote(&self, key: &K) -> bool {
        let mut buckets = self.buckets.lock();
        let merged = buckets.demote(key);
        self.hot_gauge.store(buckets.hot_keys.len(), Ordering::Release);
        merged
    }

    /// The split bucket under `key`, if any (for handle caches).
    fn hot_bucket(&self, key: &K) -> Option<Arc<HotBucket<V>>> {
        match self.buckets.lock().map.get(key) {
            Some(Bucket::Hot(hot)) => Some(Arc::clone(hot)),
            _ => None,
        }
    }

    /// Demotes every split bucket whose key `is_cold` — the hysteresis
    /// sweep sampled operations run against their home segment. Returns
    /// how many buckets were merged back. A segment with no split buckets
    /// answers from the gauge without taking any lock; one with split
    /// buckets consults only its (few) hot keys, never the whole map.
    fn demote_cold(&self, is_cold: &dyn Fn(&K) -> bool) -> usize {
        if self.hot_gauge.load(Ordering::Acquire) == 0 {
            return 0;
        }
        let mut buckets = self.buckets.lock();
        let cold: Vec<K> = buckets.hot_keys.iter().filter(|key| is_cold(key)).cloned().collect();
        for key in &cold {
            buckets.demote(key);
        }
        self.hot_gauge.store(buckets.hot_keys.len(), Ordering::Release);
        cold.len()
    }

    /// Segment-local event counters and the split-bucket gauge, for
    /// [`PoolCounters`](crate::stats::PoolCounters) aggregation.
    fn counters(&self) -> (u64, u64, u64, u64) {
        let buckets = self.buckets.lock();
        (buckets.evictions, buckets.promotions, buckets.demotions, buckets.hot_keys.len() as u64)
    }
}

/// Transfer shells a keyed pool retains per segment (see
/// [`FreeList`]; the steal/refill cycle keeps at most one in flight per
/// concurrent search).
const CACHED_SHELLS_PER_SEGMENT: usize = 2;

pub(crate) struct KeyedShared<K, V, T> {
    segments: Box<[KeyedSegment<K, V>]>,
    /// Pool-wide cache of spare transfer vectors: steals fill a recycled
    /// shell, refills return it (see [`transfer`](crate::transfer)).
    shells: FreeList<Vec<V>>,
    /// The sampled key-frequency window (`None` when hot-key detection is
    /// disabled); only sampled operations touch its lock.
    detector: Option<HotKeyDetector<K>>,
    /// The hot-key knobs, kept even when detection is off so manual
    /// [`KeyedPool::promote_key`] calls know the sub-shard count.
    hot_cfg: HotKeyConfig,
    /// The magazine exchange point, present when built with a non-zero
    /// [`KeyedPoolBuilder::handle_cache`] depth. Keyed magazines carry
    /// whole `(key, value)` pairs — a magazine is *not* key-homogeneous.
    depot: Option<Depot<(K, V)>>,
    /// The configured magazine depth (elements per magazine; zero = off).
    handle_cache: usize,
    registry: Registry,
    timing: T,
}

impl<K: Key, V: Send + 'static, T: Timing> KeyedShared<K, V, T> {
    /// The key's observed heat in `[0, 1]` (0 when detection is off) —
    /// the weight the steal sweep folds into victim ranking.
    fn heat(&self, key: &K) -> f64 {
        self.detector.as_ref().map_or(0.0, |d| d.heat(key))
    }

    /// The pool's notifier (the wait/wake and close subsystem).
    pub(crate) fn notifier(&self) -> &Notifier {
        self.registry.notifier()
    }

    /// Whether every pool-visible store is empty — all segments plus the
    /// magazine depot's stashed gauge — the any-key drained snapshot the
    /// blocking and polling drivers use to finalize `Closed`. Elements
    /// cached in handles' magazines are deliberately not counted (see
    /// [`magazine`](crate::magazine)).
    pub(crate) fn drained(&self) -> bool {
        self.segments.iter().all(|s| s.len() == 0)
            && self.depot.as_ref().is_none_or(|d| d.stashed() == 0)
    }

    /// Whether no segment holds an element of `key` — the key-scoped
    /// drained snapshot (other keys' residue does not keep a keyed remove
    /// alive). Depot magazines are mixed-key, so a non-empty depot keeps
    /// every key alive *conservatively*: each retry's raid banks one
    /// magazine into segments (where `key_len` can see its contents), so
    /// the snapshot converges in at most ring-capacity retries.
    pub(crate) fn drained_key(&self, key: &K) -> bool {
        self.segments.iter().all(|s| s.key_len(key) == 0)
            && self.depot.as_ref().is_none_or(|d| d.stashed() == 0)
    }

    /// Maps a search abort to its caller-facing error, with the drained
    /// check scoped by `drained`: on a closed pool whose relevant elements
    /// are gone the abort is final ([`RemoveError::Closed`]); otherwise
    /// the §3.2 [`RemoveError::Aborted`] semantics apply.
    fn abort_error(&self, drained: impl Fn() -> bool) -> RemoveError {
        if self.registry.notifier().is_closed() && drained() {
            RemoveError::Closed
        } else {
            RemoveError::Aborted
        }
    }

    /// One any-key remove pass — local fast path, then the largest-bucket
    /// ring steal — shared by [`KeyedHandle::try_remove_any`] (attached,
    /// `detached = false`) and [`KeyedRemoveFuture`](crate::KeyedRemoveFuture)
    /// (`detached = true`: the search observes the §3.2 gate without
    /// registering on it — see
    /// [`SearchSession::begin_detached`]).
    ///
    /// `cursor` is the linear `LastFound` state: the pass resumes from it
    /// and persists its progress back through it, so retries (and
    /// successive polls of one future) keep walking the ring instead of
    /// re-probing the same prefix.
    pub(crate) fn remove_any_pass(
        &self,
        me: ProcId,
        home: SegIdx,
        cursor: &mut SegIdx,
        stats: &mut ProcStats,
        detached: bool,
        mut wait: Option<&mut WaitCtl<'_>>,
    ) -> Result<(K, V), RemoveError> {
        let timer = OpTimer::start(&self.timing, me, 0);
        self.timing.charge(me, Resource::Segment(home));
        if let Some(found) = self.segments[home.index()].remove_any() {
            timer.finish_local_remove(stats);
            return Ok(found);
        }
        // Depot raid: before paying for a ring search, try to claim a full
        // magazine other handles flushed. One pair satisfies this remove;
        // the remainder is banked into the home segment (and consumers
        // woken) *before* the gauge drops, so a concurrent drained snapshot
        // never under-counts.
        if let Some(depot) = &self.depot {
            if let Some((pair, rest)) = depot.raid() {
                if let Some(rest) = rest {
                    let n = rest.len();
                    self.timing.charge(me, Resource::Segment(home));
                    self.segments[home.index()].add_bulk_mixed(rest);
                    self.registry.notifier().notify_all();
                    depot.unstash(n);
                }
                stats.depot_exchanges += 1;
                timer.finish_depot_remove(stats);
                return Ok(pair);
            }
        }
        if let Some(ctl) = wait.as_deref_mut() {
            ctl.begin_pass();
        }

        let mut session = begin_keyed_search(self, me, home, detached);
        let segments = &self.segments;
        // The engine's probe moves an anonymous batch; the victim's bucket
        // key travels beside it in this slot (set by the drain closure, read
        // by the refill closure and the success path) so elements need not
        // carry per-element key clones.
        let stolen_key: std::cell::RefCell<Option<K>> = std::cell::RefCell::new(None);
        let result = ring_search(
            &mut session,
            segments.len(),
            *cursor,
            |session, victim| {
                session.probe(
                    victim,
                    || {
                        // Segment-level empty skip: the atomic occupancy
                        // mirror rules out any non-empty bucket without
                        // taking the victim's lock.
                        if segments[victim.index()].len() == 0 {
                            return Vec::new();
                        }
                        match segments[victim.index()]
                            .steal_half_largest(&self.shells, &|k| self.heat(k))
                        {
                            Some((key, values)) => {
                                *stolen_key.borrow_mut() = Some(key);
                                values
                            }
                            None => Vec::new(),
                        }
                    },
                    |rest| {
                        let key = stolen_key.borrow();
                        let key = key.as_ref().expect("refill follows a successful drain");
                        segments[home.index()].add_bulk(key, rest, &self.shells);
                    },
                )
            },
            |c| *cursor = c,
            RingCtx {
                notifier: self.registry.notifier(),
                has_work: &|| {
                    segments.iter().any(|s| s.len() > 0)
                        || self.depot.as_ref().is_some_and(|d| d.stashed() > 0)
                },
                wait,
            },
        );
        stats.segments_examined += session.examined();
        drop(session);
        match result {
            Some((value, stolen, victim)) => {
                *cursor = victim;
                let key = stolen_key.into_inner().expect("steal recorded its key");
                let search_t0 = timer.t0();
                timer.finish_steal_remove(stats, stolen, search_t0);
                Ok((key, value))
            }
            None => {
                timer.finish_aborted(stats);
                Err(self.abort_error(|| self.drained()))
            }
        }
    }

    /// One key-scoped remove pass — the per-key analogue of
    /// [`remove_any_pass`](Self::remove_any_pass), stealing half of a
    /// remote `key` bucket; the wake filter and drained snapshot are
    /// scoped to `key`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn remove_key_pass(
        &self,
        me: ProcId,
        home: SegIdx,
        key: &K,
        cursor: &mut SegIdx,
        stats: &mut ProcStats,
        detached: bool,
        mut wait: Option<&mut WaitCtl<'_>>,
    ) -> Result<V, RemoveError> {
        let timer = OpTimer::start(&self.timing, me, 0);
        self.timing.charge(me, Resource::Segment(home));
        if let Some(value) = self.segments[home.index()].remove_key(key) {
            timer.finish_local_remove(stats);
            return Ok(value);
        }
        // Depot raid, keyed flavour: claim one full magazine and scan it for
        // `key`. Match or not, the rest is banked into the home segment (so
        // `key_len` can see any copies it held and the conservative
        // [`drained_key`](Self::drained_key) snapshot makes progress) before
        // the gauge drops.
        if let Some(depot) = &self.depot {
            if let Some(mut mag) = depot.take_full() {
                let n = mag.len();
                let hit = mag.iter().rposition(|(k, _)| k == key).map(|at| mag.swap_remove(at).1);
                if !mag.is_empty() {
                    self.timing.charge(me, Resource::Segment(home));
                    self.segments[home.index()].add_bulk_mixed(mag);
                    self.registry.notifier().notify_all();
                } else {
                    depot.put_shell(mag);
                }
                depot.unstash(n);
                stats.depot_exchanges += 1;
                if let Some(value) = hit {
                    timer.finish_depot_remove(stats);
                    return Ok(value);
                }
            }
        }
        if let Some(ctl) = wait.as_deref_mut() {
            ctl.begin_pass();
        }

        let mut session = begin_keyed_search(self, me, home, detached);
        let segments = &self.segments;
        let result = ring_search(
            &mut session,
            segments.len(),
            *cursor,
            |session, victim| {
                session.probe(
                    victim,
                    || {
                        // Same lock-free empty skip as the anonymous steal:
                        // a segment with no elements at all certainly has no
                        // `key` bucket worth locking for.
                        if segments[victim.index()].len() == 0 {
                            return Vec::new();
                        }
                        segments[victim.index()].steal_half_key(key, &self.shells)
                    },
                    |rest| segments[home.index()].add_bulk(key, rest, &self.shells),
                )
            },
            |c| *cursor = c,
            RingCtx {
                notifier: self.registry.notifier(),
                // A keyed wait only resumes probing for elements it can
                // actually take: other keys' traffic re-parks it. Depot
                // magazines are mixed-key, so a non-empty depot counts as
                // possible work (the retry's raid resolves the question).
                has_work: &|| {
                    segments.iter().any(|s| s.key_len(key) > 0)
                        || self.depot.as_ref().is_some_and(|d| d.stashed() > 0)
                },
                wait,
            },
        );
        stats.segments_examined += session.examined();
        drop(session);
        match result {
            Some((value, stolen, victim)) => {
                *cursor = victim;
                let search_t0 = timer.t0();
                timer.finish_steal_remove(stats, stolen, search_t0);
                Ok(value)
            }
            None => {
                timer.finish_aborted(stats);
                Err(self.abort_error(|| self.drained_key(key)))
            }
        }
    }
}

/// Configures and builds a [`KeyedPool`] — the keyed counterpart of
/// [`PoolBuilder`](crate::PoolBuilder), replacing the former ad-hoc
/// `new`/`with_timing` constructor pair.
///
/// Like `PoolBuilder`, the segment count is stated once ([`new`](Self::new))
/// and the cost model is a statically-dispatched type parameter rebound by
/// [`timing`](Self::timing). The keyed pool's search is the built-in
/// per-key linear walk (see the [module docs](self)), so there is no policy
/// choice to configure.
///
/// ```
/// use cpool::{KeyedPool, KeyedPoolBuilder, NullTiming};
///
/// let pool: KeyedPool<&'static str, u32> =
///     KeyedPoolBuilder::new(4).timing(NullTiming::new()).build();
/// assert_eq!(pool.segments(), 4);
/// ```
#[must_use = "a KeyedPoolBuilder does nothing until build() is called"]
pub struct KeyedPoolBuilder<T: Timing = NullTiming> {
    segments: usize,
    resident_buckets_max: usize,
    hotkey: Option<HotKeyConfig>,
    handle_cache: usize,
    timing: T,
}

impl<T: Timing> std::fmt::Debug for KeyedPoolBuilder<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedPoolBuilder")
            .field("segments", &self.segments)
            .field("resident_buckets_max", &self.resident_buckets_max)
            .field("hotkey", &self.hotkey)
            .field("handle_cache", &self.handle_cache)
            .finish_non_exhaustive()
    }
}

impl KeyedPoolBuilder {
    /// Starts building a keyed pool with `segments` segments, the free
    /// [`NullTiming`] cost model, and hot-key detection at the
    /// [default knobs](HotKeyConfig::default).
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn new(segments: usize) -> Self {
        assert!(segments > 0, "pool must have at least one segment");
        KeyedPoolBuilder {
            segments,
            resident_buckets_max: RESIDENT_BUCKETS_MAX,
            hotkey: Some(HotKeyConfig::default()),
            handle_cache: 0,
            timing: NullTiming::new(),
        }
    }
}

impl<T: Timing> KeyedPoolBuilder<T> {
    /// Installs a cost model (defaults to [`NullTiming`]), rebinding the
    /// builder's timing type parameter; pass a
    /// [`DynTiming`](crate::timing::DynTiming) for runtime selection.
    pub fn timing<T2: Timing>(self, timing: T2) -> KeyedPoolBuilder<T2> {
        KeyedPoolBuilder {
            segments: self.segments,
            resident_buckets_max: self.resident_buckets_max,
            hotkey: self.hotkey,
            handle_cache: self.handle_cache,
            timing,
        }
    }

    /// Caps how many *empty* buckets each segment keeps resident for
    /// capacity reuse before evicting the excess (default 64). Raise it
    /// for wide stable key sets (keeps the steal/refill cycle
    /// allocation-free for more keys); lower it for ephemeral-key
    /// workloads where retained capacity is waste. Evictions are counted
    /// in [`PoolCounters::bucket_evictions`](crate::stats::PoolCounters::bucket_evictions).
    pub fn resident_buckets_max(mut self, max: usize) -> Self {
        self.resident_buckets_max = max;
        self
    }

    /// Installs hot-key detection knobs (see [`HotKeyConfig`]); detection
    /// is on by default with [`HotKeyConfig::default`].
    ///
    /// # Panics
    ///
    /// Panics if the knobs are incoherent (e.g. `demote_pct` not strictly
    /// below `promote_pct`).
    pub fn hot_keys(mut self, cfg: HotKeyConfig) -> Self {
        cfg.validate();
        self.hotkey = Some(cfg);
        self
    }

    /// Disables hot-key detection: no sampling, no splits, and the steal
    /// sweep falls back to the plain largest-bucket rule. Manual
    /// [`KeyedPool::promote_key`] still works (using default sub-shards).
    pub fn hot_keys_disabled(mut self) -> Self {
        self.hotkey = None;
        self
    }

    /// Gives every [`KeyedHandle`] a two-magazine element cache of `depth`
    /// `(key, value)` pairs per magazine (default 0 = off), exchanged
    /// through a shared per-pool depot — the keyed counterpart of
    /// [`PoolBuilder::handle_cache`](crate::PoolBuilder::handle_cache).
    ///
    /// Keyed magazines are *mixed-key*: a cached pair is invisible to
    /// `key_len` and to `try_remove_key` on other handles until it is
    /// flushed, and cached adds skip hot-key sampling. See the README's
    /// "Handle-local caching" section for when not to enable this.
    pub fn handle_cache(mut self, depth: usize) -> Self {
        self.handle_cache = depth;
        self
    }

    /// Builds the keyed pool.
    #[must_use]
    pub fn build<K: Key, V: Send + 'static>(self) -> KeyedPool<K, V, T> {
        let hot_cfg = self.hotkey.unwrap_or_default();
        KeyedPool {
            shared: Arc::new(KeyedShared {
                segments: (0..self.segments)
                    .map(|_| KeyedSegment::new(self.resident_buckets_max))
                    .collect(),
                shells: FreeList::new(CACHED_SHELLS_PER_SEGMENT * self.segments + 2),
                detector: self.hotkey.map(HotKeyDetector::new),
                hot_cfg,
                depot: (self.handle_cache > 0)
                    .then(|| Depot::new(self.handle_cache, 2 * self.segments + 2)),
                handle_cache: self.handle_cache,
                registry: Registry::new(),
                timing: self.timing,
            }),
        }
    }
}

/// A concurrent pool of distinguishable elements.
///
/// The third type parameter is the statically-dispatched cost model
/// (default: the free [`NullTiming`]); use
/// [`DynTiming`](crate::timing::DynTiming) for runtime selection. See the
/// [module docs](self) for the design. Cloning is cheap and shares the
/// pool.
///
/// ```
/// use cpool::KeyedPool;
///
/// let pool: KeyedPool<&'static str, u32> = KeyedPool::new(4);
/// let mut h = pool.register();
/// h.add("red", 1);
/// h.add("blue", 2);
/// assert_eq!(h.try_remove_key(&"blue"), Ok(2));
/// assert_eq!(h.try_remove_any(), Ok(("red", 1)));
/// ```
pub struct KeyedPool<K, V, T: Timing = NullTiming> {
    shared: Arc<KeyedShared<K, V, T>>,
}

impl<K, V, T: Timing> Clone for KeyedPool<K, V, T> {
    fn clone(&self) -> Self {
        KeyedPool { shared: Arc::clone(&self.shared) }
    }
}

impl<K, V, T: Timing> std::fmt::Debug for KeyedPool<K, V, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedPool")
            .field("segments", &self.shared.segments.len())
            .field("registered", &self.shared.registry.gate().registered())
            .finish_non_exhaustive()
    }
}

impl<K: Key, V: Send + 'static> KeyedPool<K, V> {
    /// Creates a keyed pool with `segments` segments and no cost model
    /// (shorthand for [`KeyedPoolBuilder::new(segments).build()`]; use the
    /// builder to install a cost model).
    ///
    /// [`KeyedPoolBuilder::new(segments).build()`]: KeyedPoolBuilder
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn new(segments: usize) -> Self {
        KeyedPoolBuilder::new(segments).build()
    }
}

impl<K: Key, V: Send + 'static, T: Timing> KeyedPool<K, V, T> {
    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.shared.segments.len()
    }

    /// Total elements across all segments (snapshot).
    pub fn total_len(&self) -> usize {
        self.shared.segments.iter().map(KeyedSegment::len).sum()
    }

    /// Elements of one key across all segments (snapshot).
    pub fn key_len(&self, key: &K) -> usize {
        self.shared.segments.iter().map(|s| s.key_len(key)).sum()
    }

    /// Current size of one segment (snapshot).
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of range.
    pub fn segment_len(&self, seg: SegIdx) -> usize {
        self.shared.segments[seg.index()].len()
    }

    /// Pairs currently held in the magazine depot (snapshot; 0 when
    /// [`KeyedPoolBuilder::handle_cache`] is off). These are pool-visible —
    /// any remover can raid them — but not yet in any segment, so they are
    /// excluded from [`total_len`](Self::total_len) and
    /// [`key_len`](Self::key_len).
    pub fn depot_len(&self) -> usize {
        self.shared.depot.as_ref().map_or(0, Depot::stashed)
    }

    /// Closes the pool — see [`PoolOps::close`] (sticky, idempotent;
    /// blocked and future removers drain the residue and then observe
    /// [`RemoveError::Closed`]).
    ///
    /// ```
    /// use cpool::{KeyedPool, RemoveError, WaitStrategy};
    ///
    /// let pool: KeyedPool<u8, u32> = KeyedPool::new(2);
    /// let mut h = pool.register();
    /// h.add(1, 10);
    /// pool.close();
    /// assert_eq!(h.remove_key(&1, WaitStrategy::Block), Ok(10), "residue drains first");
    /// assert_eq!(h.remove_key(&1, WaitStrategy::Block), Err(RemoveError::Closed));
    /// ```
    pub fn close(&self) {
        self.shared.registry.notifier().close();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.shared.registry.notifier().is_closed()
    }

    /// Registers a process; the `i`-th registration homes at segment
    /// `i mod segments`.
    pub fn register(&self) -> KeyedHandle<K, V, T> {
        let (me, seg) = self.shared.registry.register(self.segments());
        let magazine = (self.shared.handle_cache > 0)
            .then(|| std::cell::RefCell::new(MagazineCache::new(self.shared.handle_cache)));
        KeyedHandle {
            shared: Arc::clone(&self.shared),
            me,
            seg,
            last_found_any: seg,
            last_found_key: BTreeMap::new(),
            hot_cache: Vec::new(),
            hot_range: None,
            sample_tick: 0,
            sweep_tick: 0,
            magazine,
            stats: ProcStats::default(),
            poll_slot: None,
        }
    }

    /// Splits `key`'s bucket into sub-shards on every segment, regardless
    /// of observed heat — a manual override for workloads that know their
    /// hot set up front (and for deterministic tests/benches). Uses the
    /// configured [`HotKeyConfig::sub_shards`]; idempotent.
    pub fn promote_key(&self, key: &K) {
        for segment in self.shared.segments.iter() {
            segment.promote(key, self.shared.hot_cfg.sub_shards);
        }
    }

    /// Merges `key`'s sub-shards back into plain buckets on every segment
    /// (no-op where the key is not split). Handles still caching the split
    /// bucket fall back to the routed path on their next `key` operation.
    pub fn demote_key(&self, key: &K) {
        for segment in self.shared.segments.iter() {
            segment.demote(key);
        }
    }

    /// Statistics of dropped handles, by process id, plus the pool-wide
    /// keyed-frontend counters (bucket evictions, hot-key promotions and
    /// demotions, and the current split-bucket gauge).
    pub fn stats(&self) -> PoolStats {
        let mut stats = self.shared.registry.stats();
        for segment in self.shared.segments.iter() {
            let (evictions, promotions, demotions, hot) = segment.counters();
            stats.pool.bucket_evictions += evictions;
            stats.pool.hotkey_promotions += promotions;
            stats.pool.hotkey_demotions += demotions;
            stats.pool.hot_buckets += hot;
        }
        stats
    }
}

/// Per-process handle to a [`KeyedPool`].
///
/// Like [`Handle`](crate::Handle): `Send` but not `Sync`; dropping it
/// deregisters from the livelock gate and deposits statistics.
pub struct KeyedHandle<K: Key, V: Send + 'static, T: Timing = NullTiming> {
    shared: Arc<KeyedShared<K, V, T>>,
    me: ProcId,
    seg: SegIdx,
    /// Where `try_remove_any` last found elements (the linear `LastFound`).
    last_found_any: SegIdx,
    /// Where each key was last found.
    last_found_key: BTreeMap<K, SegIdx>,
    /// Handle-local cache of this home segment's split buckets: hot-key
    /// operations go straight to a sub-shard lock, bypassing the segment
    /// lock entirely. A flat vector, linearly scanned — it holds a
    /// handful of genuinely hot keys at most, and the scan is the per-op
    /// cost of every keyed operation's fast-path probe. Entries go stale
    /// harmlessly — a sealed sub-shard bounces the operation back to the
    /// routed path, which uncaches.
    hot_cache: Vec<(K, Arc<HotBucket<V>>)>,
    /// `(min, max)` of the cached keys — the one-comparison pre-filter
    /// that spares cold-key operations the cache scan (`None` when the
    /// cache is empty).
    hot_range: Option<(K, K)>,
    /// Countdown to the next sampled operation (see
    /// [`HotKeyConfig::sample_every`]); handle-local, so the unsampled
    /// path touches no shared state.
    sample_tick: u32,
    /// Countdown (in samples) to the next hysteresis sweep. The sweep
    /// costs a segment-lock plus a detector probe per split bucket, so it
    /// runs on one sample in [`SWEEP_EVERY_SAMPLES`] — decay only needs
    /// to be eventual, not immediate.
    sweep_tick: u32,
    /// The two-magazine `(key, value)` cache, present when the pool was
    /// built with [`KeyedPoolBuilder::handle_cache`]. `RefCell` because
    /// [`close`](Self::close) flushes through `&self`.
    magazine: Option<std::cell::RefCell<MagazineCache<(K, V)>>>,
    stats: ProcStats,
    /// Armed waker-registration ticket from [`poll_remove`](Self::poll_remove),
    /// carried between polls so the next poll (or drop) can withdraw it.
    poll_slot: Option<u64>,
}

impl<K: Key, V: Send + 'static, T: Timing> std::fmt::Debug for KeyedHandle<K, V, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedHandle")
            .field("proc", &self.me)
            .field("segment", &self.seg)
            .finish_non_exhaustive()
    }
}

impl<K: Key, V: Send + 'static, T: Timing> KeyedHandle<K, V, T> {
    /// This process's id.
    pub fn proc_id(&self) -> ProcId {
        self.me
    }

    /// This process's home segment.
    pub fn home_segment(&self) -> SegIdx {
        self.seg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ProcStats {
        &self.stats
    }

    /// Closes the pool — see [`PoolOps::close`]. Any handle (or the
    /// [`KeyedPool`] itself) may close; the transition is pool-wide.
    ///
    /// Flushes this handle's magazines into its home segment first, so
    /// blocked and future removers can drain the cached residue before
    /// observing [`RemoveError::Closed`]. Other handles' magazines flush
    /// at their own next flush point (see [`magazine`](crate::magazine)).
    pub fn close(&self) {
        self.flush_magazine();
        self.shared.registry.notifier().close();
    }

    /// Whether the pool has been [closed](Self::close).
    pub fn is_closed(&self) -> bool {
        self.shared.registry.notifier().is_closed()
    }

    /// Pairs currently cached in this handle's magazines (0 when
    /// [`KeyedPoolBuilder::handle_cache`] is off). These are invisible to
    /// [`KeyedPool::total_len`]/[`KeyedPool::key_len`] and to every other
    /// handle until flushed.
    pub fn cached_len(&self) -> usize {
        self.magazine.as_ref().map_or(0, |m| m.borrow().len())
    }

    /// Banks both magazines into the home segment and wakes consumers —
    /// the close/drop/drain flush point.
    fn flush_magazine(&self) {
        let Some(mag) = &self.magazine else { return };
        let mut mag = mag.borrow_mut();
        if mag.is_empty() {
            return;
        }
        let items = mag.take_all();
        drop(mag);
        self.shared.timing.charge(self.me, Resource::Segment(self.seg));
        self.shared.segments[self.seg.index()].add_bulk_mixed(items);
        self.shared.registry.notifier().notify_all();
    }

    /// Feeds one in [`HotKeyConfig::sample_every`] operations on `key`
    /// into the pool's hot-key detector; on a promote-threshold crossing
    /// splits the key's bucket on the home segment (each handle promotes
    /// lazily for its own segment — other segments split when their own
    /// traffic samples the key), and sweeps cooled-off split buckets back
    /// to plain. No-op (one branch, one decrement) off the sample tick or
    /// with detection disabled.
    fn maybe_sample(&mut self, key: &K) {
        if self.shared.detector.is_none() {
            return;
        }
        self.sample_tick += 1;
        if self.sample_tick < self.shared.hot_cfg.sample_every {
            return;
        }
        self.sample_tick = 0;
        let shared = Arc::clone(&self.shared);
        let detector = shared.detector.as_ref().expect("checked non-None above");
        let count = detector.observe(key.clone());
        let segment = &shared.segments[self.seg.index()];
        if count >= detector.promote_count() {
            // Splitting is idempotent but not free (segment lock + cache
            // refresh); a steadily hot key re-crosses the threshold on
            // every sample, so skip once this handle already holds the
            // split bucket.
            if self.cached_hot(key).is_none() {
                let hot = segment.promote(key, detector.cfg().sub_shards);
                self.cache_hot(key.clone(), hot);
            }
        } else if count >= detector.demote_count() && self.cached_hot(key).is_none() {
            // Another handle may have split this bucket already (each
            // handle's window samples are shared); adopt the split so this
            // handle's traffic also takes the sub-shard fast path.
            if let Some(hot) = segment.hot_bucket(key) {
                self.cache_hot(key.clone(), hot);
            }
        }
        // Hysteresis sweep: merge back every split bucket whose key fell
        // below the demote threshold (strictly under the promote one, so a
        // key hovering at one level cannot thrash). Throttled to one
        // sample in SWEEP_EVERY_SAMPLES — decay is eventual by design.
        self.sweep_tick += 1;
        if self.sweep_tick >= SWEEP_EVERY_SAMPLES {
            self.sweep_tick = 0;
            let demote_count = detector.demote_count();
            segment.demote_cold(&|k| detector.count(k) < demote_count);
        }
    }

    /// The cached split bucket for `key`, if this handle has adopted one.
    /// The key-range pre-filter rejects most cold keys in one comparison
    /// before the (short) linear scan — this probe is on every keyed
    /// operation's path, hot or not.
    fn cached_hot(&self, key: &K) -> Option<&Arc<HotBucket<V>>> {
        match &self.hot_range {
            Some((lo, hi)) if key >= lo && key <= hi => {
                self.hot_cache.iter().find(|(k, _)| k == key).map(|(_, hot)| hot)
            }
            _ => None,
        }
    }

    /// Recomputes the cache's key-range pre-filter after a mutation.
    fn refresh_hot_range(&mut self) {
        self.hot_range = match (
            self.hot_cache.iter().map(|(k, _)| k).min(),
            self.hot_cache.iter().map(|(k, _)| k).max(),
        ) {
            (Some(lo), Some(hi)) => Some((lo.clone(), hi.clone())),
            _ => None,
        };
    }

    /// Drops a stale cache entry (the bucket was demoted behind us).
    fn uncache_hot(&mut self, key: &K) {
        self.hot_cache.retain(|(k, _)| k != key);
        self.refresh_hot_range();
    }

    /// Caches a split bucket for the segment-lock-free fast path. The
    /// cache is a small bounded vector; at the bound it is cleared rather
    /// than evicted piecewise — by construction only genuinely hot keys
    /// land here, so refill is cheap and rare.
    fn cache_hot(&mut self, key: K, hot: Arc<HotBucket<V>>) {
        if let Some(slot) = self.hot_cache.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = hot;
            return;
        }
        if self.hot_cache.len() >= HOT_CACHE_MAX {
            self.hot_cache.clear();
        }
        self.hot_cache.push((key, hot));
        self.refresh_hot_range();
    }

    /// Adds an element under `key` to the local segment, then signals the
    /// pool's notifier (after the segment lock is released) so consumers
    /// parked in a [`Block`](WaitStrategy::Block) remove wake on the add
    /// edge. Hot keys bypass the segment lock: the cached split bucket
    /// takes the value under one sub-shard lock.
    pub fn add(&mut self, key: K, value: V) {
        let shared = Arc::clone(&self.shared);
        let mut key = key;
        let mut value = value;
        // Magazine fast path, clock-free and before the timer starts: cache
        // the pair handle-locally (zero shared RMWs) unless consumers are
        // parked — then flush instead, so no element is stranded invisible
        // while a remover sleeps. Cached adds skip hot-key sampling (a
        // magazined pair never lands in a bucket, so it carries no heat
        // signal) and skip the segment charge (the point of the cache is to
        // not touch the segment).
        if let (Some(depot), Some(mag)) = (&shared.depot, &self.magazine) {
            if shared.registry.notifier().waiters() > 0 {
                let mut mag = mag.borrow_mut();
                if !mag.is_empty() {
                    let items = mag.take_all();
                    drop(mag);
                    shared.timing.charge(self.me, Resource::Segment(self.seg));
                    shared.segments[self.seg.index()].add_bulk_mixed(items);
                    self.stats.flush_on_wait += 1;
                }
                // Fall through: this add goes in pool-visibly, and the
                // ordinary path's notify wakes the waiters.
            } else {
                match mag.borrow_mut().cache((key, value), depot) {
                    CacheOutcome::Cached => {
                        self.stats.record_cached_add();
                        return;
                    }
                    CacheOutcome::Exchanged => {
                        self.stats.depot_exchanges += 1;
                        // A full magazine just became raidable; wake a
                        // parked remover in case one raced past the
                        // waiter check above.
                        shared.registry.notifier().notify_all();
                        self.stats.record_cached_add();
                        return;
                    }
                    CacheOutcome::Full(back) => {
                        (key, value) = back;
                    }
                }
            }
        }
        let timer = OpTimer::start(&shared.timing, self.me, 0);
        shared.timing.charge(self.me, Resource::Segment(self.seg));
        self.maybe_sample(&key);
        let segment = &shared.segments[self.seg.index()];
        if let Some(hot) = self.cached_hot(&key) {
            // The process slot as sub-shard affinity: concurrent handles
            // spread across distinct shards, and this handle's pops probe
            // the same shard first.
            match segment.hot_push(hot, value, self.me.index()) {
                Ok(()) => {
                    self.shared.registry.notifier().notify_all();
                    timer.finish_add(&mut self.stats, false);
                    return;
                }
                Err(v) => {
                    // Sealed: the bucket was demoted; drop the stale cache
                    // entry and take the routed path.
                    self.uncache_hot(&key);
                    value = v;
                }
            }
        }
        segment.add(key, value);
        self.shared.registry.notifier().notify_all();
        timer.finish_add(&mut self.stats, false);
    }

    /// Removes an arbitrary element, stealing half of a remote bucket when
    /// the local segment is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RemoveError::Aborted`] when every registered process was
    /// searching simultaneously (the pool is starving), or
    /// [`RemoveError::Closed`] when additionally the pool is closed and
    /// drained.
    pub fn try_remove_any(&mut self) -> Result<(K, V), RemoveError> {
        self.try_remove_any_inner(None)
    }

    fn try_remove_any_inner(
        &mut self,
        wait: Option<&mut WaitCtl<'_>>,
    ) -> Result<(K, V), RemoveError> {
        // Magazine fast path: pop handle-locally (refilling from the depot
        // on a dry cache) before touching any segment.
        if let (Some(depot), Some(mag)) = (&self.shared.depot, &self.magazine) {
            match mag.borrow_mut().pop(depot) {
                // Clock-free, like the cached add: a wall-clock read would
                // cost more than the thread-local pop it prices.
                PopOutcome::Hit(pair) => {
                    self.stats.record_cached_remove();
                    return Ok(pair);
                }
                PopOutcome::Refilled(pair) => {
                    self.stats.depot_exchanges += 1;
                    self.stats.record_cached_remove();
                    return Ok(pair);
                }
                PopOutcome::Miss => {}
            }
        }
        // The pass engine lives on the shared state (the futures in
        // [`crate::future`] run the same pass); the handle supplies its
        // identity, cursor, and stats.
        let shared = Arc::clone(&self.shared);
        let out = shared.remove_any_pass(
            self.me,
            self.seg,
            &mut self.last_found_any,
            &mut self.stats,
            false,
            wait,
        );
        // No sampling: detection is producer-side only (see `add`), so
        // every remove flavor keeps the plain-baseline cost.
        out
    }

    /// Removes an element with the given key, stealing half of a remote
    /// `key` bucket when the local one is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RemoveError::Aborted`] when every registered process was
    /// searching simultaneously (no element of `key` is reachable and
    /// nobody can be adding one), or [`RemoveError::Closed`] when the pool
    /// is closed and holds no element of `key` anywhere.
    pub fn try_remove_key(&mut self, key: &K) -> Result<V, RemoveError> {
        self.try_remove_key_inner(key, None)
    }

    fn try_remove_key_inner(
        &mut self,
        key: &K,
        wait: Option<&mut WaitCtl<'_>>,
    ) -> Result<V, RemoveError> {
        // No sampling here: detection is producer-side (see `add`) — an
        // element must be added before it can be removed, so add traffic
        // is a faithful heat proxy and removes keep the baseline cost.
        // Magazine scan first: this handle's own cached pairs are invisible
        // to every pool-side path, so they must be served (or they would
        // deadlock a remove of a key that only this handle holds).
        if let Some(mag) = &self.magazine {
            if let Some((_, value)) = mag.borrow_mut().take_matching(|(k, _)| k == key) {
                self.stats.record_cached_remove();
                return Ok(value);
            }
        }
        // Hot-key fast path: a cached split bucket serves the remove under
        // one sub-shard lock, never touching the segment lock. An empty or
        // sealed result falls through to the full pass (which can steal
        // the key from remote segments).
        if let Some(hot) = self.cached_hot(key) {
            let timer = OpTimer::start(&self.shared.timing, self.me, 0);
            self.shared.timing.charge(self.me, Resource::Segment(self.seg));
            match self.shared.segments[self.seg.index()].hot_pop(hot, self.me.index()) {
                HotPop::Got(value) => {
                    timer.finish_local_remove(&mut self.stats);
                    return Ok(value);
                }
                HotPop::Sealed => {
                    self.uncache_hot(key);
                }
                HotPop::Empty => {}
            }
        }
        // The per-key cursor map wraps the pass's flat `&mut SegIdx`
        // cursor: read this key's resume point out, persist the pass's
        // progress back in afterwards (also on aborts — a retrying caller
        // must resume at the next segment).
        let mut cursor = self.last_found_key.get(key).copied().unwrap_or(self.seg);
        let out = self.shared.remove_key_pass(
            self.me,
            self.seg,
            key,
            &mut cursor,
            &mut self.stats,
            false,
            wait,
        );
        self.last_found_key.insert(key.clone(), cursor);
        out
    }

    /// Removes an element with the given key, waiting under `wait` — the
    /// keyed analogue of [`PoolOps::remove`], with the drained check (and,
    /// for [`Block`](WaitStrategy::Block), the wakeup filter) scoped to
    /// `key`: other keys' elements cannot satisfy this remove, so they do
    /// not keep it waiting or wake it.
    ///
    /// # Errors
    ///
    /// Returns [`RemoveError::Closed`] once the pool is closed and the
    /// `key` residue is drained; [`RemoveError::Aborted`] once an aborted
    /// search observes no element of `key` anywhere, or when the strategy's
    /// [lap budget](WaitStrategy::default_attempts) is exhausted.
    pub fn remove_key(&mut self, key: &K, wait: WaitStrategy) -> Result<V, RemoveError> {
        self.remove_key_bounded(key, wait, wait.default_attempts(), None)
    }

    /// Removes an element with the given key, parking
    /// ([`Block`](WaitStrategy::Block)) for at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`RemoveError::Timeout`] when the deadline passes first; otherwise
    /// as [`remove_key`](Self::remove_key).
    pub fn remove_key_timeout(&mut self, key: &K, timeout: Duration) -> Result<V, RemoveError> {
        self.remove_key_bounded(
            key,
            WaitStrategy::Block,
            usize::MAX,
            Some(Instant::now() + timeout),
        )
    }

    /// The keyed blocking-remove primitive — see
    /// [`PoolOps::remove_bounded`] for the contract.
    ///
    /// # Panics
    ///
    /// Panics if `attempts` is zero.
    pub fn remove_key_bounded(
        &mut self,
        key: &K,
        wait: WaitStrategy,
        attempts: usize,
        deadline: Option<Instant>,
    ) -> Result<V, RemoveError> {
        assert!(attempts > 0, "a blocking remove needs at least one attempt");
        let shared = Arc::clone(&self.shared);
        let mut ctl = WaitCtl::new(shared.registry.notifier(), wait, attempts, deadline);
        // The shared driver with the drained snapshot scoped to `key`:
        // other keys' elements cannot satisfy this remove, so they do not
        // keep it alive.
        crate::core::drive_blocking_remove(
            &mut ctl,
            |ctl| self.try_remove_key_inner(key, Some(ctl)),
            || shared.drained_key(key),
            || shared.registry.notifier().is_closed(),
        )
    }

    /// Returns a future resolving to an arbitrary `(key, value)` pair —
    /// the async counterpart of [`remove`](PoolOps::remove) with
    /// [`Block`](WaitStrategy::Block). See [`future`](crate::future) for
    /// the protocol; the future searches from this handle's home segment
    /// but holds no borrow of the handle, so one handle can have many
    /// futures pending at once.
    pub fn remove_async(&self) -> crate::future::KeyedRemoveFuture<K, V, T> {
        crate::future::KeyedRemoveFuture::new(Arc::clone(&self.shared), self.me, self.seg, None)
    }

    /// [`remove_async`](Self::remove_async) with a deadline: past
    /// `timeout` the future resolves with [`RemoveError::Timeout`].
    pub fn remove_timeout_async(
        &self,
        timeout: Duration,
    ) -> crate::future::KeyedRemoveFuture<K, V, T> {
        crate::future::KeyedRemoveFuture::new(
            Arc::clone(&self.shared),
            self.me,
            self.seg,
            Some(Instant::now() + timeout),
        )
    }

    /// Returns a future resolving to a value under `key` — the async
    /// counterpart of [`remove_key`](Self::remove_key) with
    /// [`Block`](WaitStrategy::Block): while no element of `key` is
    /// reachable the future is pending, and other keys' traffic wakes it
    /// only to re-check and re-register.
    pub fn remove_key_async(&self, key: K) -> crate::future::RemoveKeyFuture<K, V, T> {
        crate::future::RemoveKeyFuture::new(Arc::clone(&self.shared), self.me, self.seg, key, None)
    }

    /// [`remove_key_async`](Self::remove_key_async) with a deadline: past
    /// `timeout` the future resolves with [`RemoveError::Timeout`].
    pub fn remove_key_timeout_async(
        &self,
        key: K,
        timeout: Duration,
    ) -> crate::future::RemoveKeyFuture<K, V, T> {
        crate::future::RemoveKeyFuture::new(
            Arc::clone(&self.shared),
            self.me,
            self.seg,
            key,
            Some(Instant::now() + timeout),
        )
    }

    /// Polls one any-key remove attempt against `cx`'s waker — the
    /// low-level poll primitive behind [`remove_async`](Self::remove_async),
    /// exposed for callers writing their own futures. Unlike the futures
    /// this runs *attached* (the handle is a registered process, so its
    /// search counts on the §3.2 gate) and accumulates into the handle's
    /// statistics. At most one registration is armed per handle; each call
    /// re-arms it with the current waker.
    pub fn poll_remove(
        &mut self,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Result<(K, V), RemoveError>> {
        let shared = Arc::clone(&self.shared);
        let mut slot = self.poll_slot.take();
        if let Some(ticket) = slot.take() {
            // Re-polls may carry a different waker: retire the stale
            // registration so the armed waker is always the current one.
            shared.notifier().cancel_waker(ticket);
        }
        let mut ctl = WaitCtl::new_poll(shared.notifier(), None, cx.waker(), &mut slot);
        let out = crate::core::drive_poll_remove(
            &mut ctl,
            |ctl| self.try_remove_any_inner(Some(ctl)),
            || shared.drained(),
            || shared.notifier().is_closed(),
        );
        self.poll_slot = slot;
        out
    }
}

/// The unified operation vocabulary over `(key, value)` pairs — see
/// [`ops`](crate::ops).
///
/// [`try_remove`](PoolOps::try_remove) maps to
/// [`try_remove_any`](KeyedHandle::try_remove_any); the batch paths take
/// the segment lock once per batch, exactly like the plain pool's. Note
/// that the inherent two-argument [`add`](KeyedHandle::add) shadows the
/// trait's pair-taking `add` for direct calls — the trait surface is for
/// generic consumers.
impl<K: Key, V: Send + 'static, T: Timing> PoolOps for KeyedHandle<K, V, T> {
    type Item = (K, V);
    type Batch = Vec<(K, V)>;
    type RemoveFuture = crate::future::KeyedRemoveFuture<K, V, T>;

    fn add(&mut self, (key, value): (K, V)) {
        KeyedHandle::add(self, key, value);
    }

    fn remove_async(&self) -> crate::future::KeyedRemoveFuture<K, V, T> {
        KeyedHandle::remove_async(self)
    }

    fn remove_timeout_async(&self, timeout: Duration) -> crate::future::KeyedRemoveFuture<K, V, T> {
        KeyedHandle::remove_timeout_async(self, timeout)
    }

    fn try_remove(&mut self) -> Result<(K, V), RemoveError> {
        self.try_remove_any()
    }

    fn is_drained(&self) -> bool {
        // This handle's own cache counts (its pairs are reachable through
        // its own removes); other handles' caches are invisible by design.
        self.shared.drained() && self.cached_len() == 0
    }

    fn close(&self) {
        KeyedHandle::close(self);
    }

    fn is_closed(&self) -> bool {
        KeyedHandle::is_closed(self)
    }

    fn remove_bounded(
        &mut self,
        wait: WaitStrategy,
        attempts: usize,
        deadline: Option<Instant>,
    ) -> Result<(K, V), RemoveError> {
        assert!(attempts > 0, "a blocking remove needs at least one attempt");
        let shared = Arc::clone(&self.shared);
        let mut ctl = WaitCtl::new(shared.registry.notifier(), wait, attempts, deadline);
        crate::core::drive_blocking_remove(
            &mut ctl,
            |ctl| self.try_remove_any_inner(Some(ctl)),
            || shared.drained(),
            || shared.registry.notifier().is_closed(),
        )
    }

    fn add_batch<I: IntoIterator<Item = (K, V)>>(&mut self, items: I) {
        // Materialize before starting the timer: an empty batch is a true
        // no-op (no time attributed, nothing recorded).
        let batch: Vec<(K, V)> = items.into_iter().collect();
        let n = batch.len();
        if n == 0 {
            return;
        }
        let timer = OpTimer::start(&self.shared.timing, self.me, 0);
        self.shared.timing.charge(self.me, Resource::Segment(self.seg));
        self.shared.segments[self.seg.index()].add_bulk_mixed(batch);
        // One wakeup per batch, after the segment lock is released.
        self.shared.registry.notifier().notify_all();
        timer.finish_add_batch(&mut self.stats, n, 0);
    }

    fn try_remove_batch(&mut self, n: usize) -> SmallDrain<Vec<(K, V)>> {
        if n == 0 {
            return SmallDrain::new(Vec::new());
        }
        let timer = OpTimer::start(&self.shared.timing, self.me, 0);
        self.shared.timing.charge(self.me, Resource::Segment(self.seg));
        let mut got = self.shared.segments[self.seg.index()].remove_up_to(n);
        if !got.is_empty() {
            timer.finish_remove_batch(&mut self.stats, got.len());
            return SmallDrain::new(got);
        }
        // Local segment empty: one any-key steal search for the first
        // element (it refills the local segment with half of a remote
        // bucket), then top up locally. The search accounts itself.
        timer.finish_remove_batch(&mut self.stats, 0);
        if let Ok(first) = self.try_remove_any() {
            got.push(first);
            if n > 1 {
                let top_up = OpTimer::start(&self.shared.timing, self.me, 0);
                self.shared.timing.charge(self.me, Resource::Segment(self.seg));
                let extra = self.shared.segments[self.seg.index()].remove_up_to(n - 1);
                top_up.finish_remove_batch(&mut self.stats, extra.len());
                got.extend(extra);
            }
        }
        SmallDrain::new(got)
    }

    fn drain(&mut self) -> SmallDrain<Vec<(K, V)>> {
        let timer = OpTimer::start(&self.shared.timing, self.me, 0);
        let mut all = Vec::new();
        // Own magazines first, then the depot (banking the gauge down only
        // after the pairs are in `all`), then the segments. Other handles'
        // magazines stay theirs — see [`magazine`](crate::magazine).
        if let Some(mag) = &self.magazine {
            all.extend(mag.borrow_mut().take_all());
        }
        if let Some(depot) = &self.shared.depot {
            while let Some(mut mag) = depot.take_full() {
                let n = mag.len();
                all.append(&mut mag);
                depot.put_shell(mag);
                depot.unstash(n);
            }
        }
        for (i, seg) in self.shared.segments.iter().enumerate() {
            self.shared.timing.charge(self.me, Resource::Segment(SegIdx::new(i)));
            all.extend(seg.drain_all());
        }
        timer.finish_remove_batch(&mut self.stats, all.len());
        SmallDrain::new(all)
    }
}

/// Opens a [`SearchSession`] for a keyed ring walk: the walk skips the home
/// segment, so one full lap — the point after which the engine's §3.2 abort
/// rule may fire — is `segments - 1` probes. A `detached` session (a
/// future's poll) observes the gate without registering as a searcher on
/// it — see [`SearchSession::begin_detached`].
fn begin_keyed_search<'a, K: Key, V: Send + 'static, T: Timing>(
    shared: &'a KeyedShared<K, V, T>,
    me: ProcId,
    home: SegIdx,
    detached: bool,
) -> SearchSession<'a, T> {
    let lap = shared.segments.len().saturating_sub(1) as u64;
    if detached {
        SearchSession::begin_detached(&shared.timing, shared.registry.gate(), me, home, lap)
    } else {
        SearchSession::begin(&shared.timing, shared.registry.gate(), me, home, lap)
    }
}

/// Walks the ring from `cursor`, skipping the searcher's home segment and
/// probing every other segment through `probe`, until a steal succeeds, the
/// engine's full-lap abort rule fires, the pool turns out closed, or the
/// blocking-wait controller gives up (budget, deadline).
///
/// The cursor is persisted through `save_cursor` *before* every abort check
/// (same reasoning as `LinearSearch`): a retrying caller must resume at the
/// next segment or it could never reach elements parked elsewhere.
///
/// On a blocking remove (`ctx.wait` present) the walk pauses or parks at
/// each fruitless lap boundary per [`WaitCtl`]; `ctx.has_work` is the wake
/// filter — for a keyed remove it is scoped to the wanted key, so other
/// keys' elements neither wake the search nor keep it probing.
fn ring_search<I, T: Timing>(
    session: &mut SearchSession<'_, T>,
    n: usize,
    mut victim: SegIdx,
    mut probe: impl FnMut(&mut SearchSession<'_, T>, SegIdx) -> Option<(I, usize)>,
    mut save_cursor: impl FnMut(SegIdx),
    mut ctx: RingCtx<'_, '_>,
) -> Option<(I, usize, SegIdx)> {
    loop {
        if victim != session.home() {
            if let Some((item, stolen)) = probe(session, victim) {
                return Some((item, stolen, victim));
            }
        }
        victim = victim.next_in_ring(n);
        save_cursor(victim);
        if session.should_abort() {
            return None;
        }
        // A closed pool ends fruitless walks at the first lap boundary even
        // when not everyone is searching; the caller's `abort_error`
        // distinguishes drained (Closed) from residue (retryable Aborted).
        if session.full_lap_done() && ctx.notifier.is_closed() {
            return None;
        }
        if let Some(ctl) = ctx.wait.as_deref_mut() {
            if ctl.on_probe(session, ctx.has_work, || false) {
                return None;
            }
        }
    }
}

/// The lifecycle-and-wait context of one [`ring_search`]: the pool's
/// notifier (for the closed check), the wake filter, and — on blocking
/// removes — the lap-boundary wait controller.
struct RingCtx<'a, 'n> {
    notifier: &'a Notifier,
    has_work: &'a dyn Fn() -> bool,
    wait: Option<&'a mut WaitCtl<'n>>,
}

impl<K: Key, V: Send + 'static, T: Timing> Drop for KeyedHandle<K, V, T> {
    fn drop(&mut self) {
        // A dropped handle withdraws any waker registration left armed by
        // a pending `poll_remove` before it stops being a waiter, and
        // banks its magazines so no cached pair is lost with the handle.
        if let Some(ticket) = self.poll_slot.take() {
            self.shared.registry.notifier().cancel_waker(ticket);
        }
        self.flush_magazine();
        self.shared.registry.retire(self.me, std::mem::take(&mut self.stats));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn local_keyed_roundtrip() {
        let pool: KeyedPool<u8, u32> = KeyedPool::new(4);
        let mut h = pool.register();
        h.add(1, 10);
        h.add(2, 20);
        h.add(1, 11);
        assert_eq!(pool.total_len(), 3);
        assert_eq!(pool.key_len(&1), 2);
        assert_eq!(h.try_remove_key(&2), Ok(20));
        assert!(matches!(h.try_remove_key(&1), Ok(10 | 11)));
        assert_eq!(pool.total_len(), 1);
    }

    #[test]
    fn missing_key_aborts_for_lone_process() {
        let pool: KeyedPool<u8, u32> = KeyedPool::new(4);
        let mut h = pool.register();
        h.add(1, 10);
        assert_eq!(h.try_remove_key(&9), Err(RemoveError::Aborted));
        assert_eq!(h.stats().aborted_removes, 1);
        assert_eq!(pool.total_len(), 1, "other keys untouched");
    }

    #[test]
    fn keyed_steal_takes_half_the_bucket() {
        let pool: KeyedPool<&'static str, u32> = KeyedPool::new(2);
        let mut a = pool.register(); // home 0
        let mut b = pool.register(); // home 1
        for i in 0..10 {
            b.add("x", i);
            b.add("y", i + 100);
        }
        // a steals from b's "x" bucket only: ceil(10/2) = 5.
        assert!(a.try_remove_key(&"x").is_ok());
        assert_eq!(a.stats().steals, 1);
        assert_eq!(a.stats().elements_stolen, 5);
        assert_eq!(pool.segment_len(SegIdx::new(0)), 4, "kept 4 of the 5 stolen");
        assert_eq!(pool.key_len(&"y"), 10, "the other bucket was not touched");
        // Next "x" removes are local.
        assert!(a.try_remove_key(&"x").is_ok());
        assert_eq!(a.stats().steals, 1);
    }

    #[test]
    fn remove_any_steals_largest_bucket() {
        let pool: KeyedPool<u8, u32> = KeyedPool::new(2);
        let mut a = pool.register();
        let mut b = pool.register();
        for i in 0..3 {
            b.add(1, i);
        }
        for i in 0..9 {
            b.add(2, i);
        }
        let (key, _) = a.try_remove_any().expect("elements exist");
        assert_eq!(key, 2, "the largest bucket is the steal victim");
        assert_eq!(a.stats().elements_stolen, 5, "ceil(9/2)");
    }

    #[test]
    fn keyed_conservation_under_concurrency() {
        let n = 4;
        let per = 500;
        let pool: KeyedPool<usize, u64> = KeyedPool::new(n);
        thread::scope(|s| {
            for w in 0..n {
                let mut h = pool.register();
                s.spawn(move || {
                    // Each worker adds under its own key then consumes its
                    // key back — all steals are keyed.
                    for i in 0..per {
                        h.add(w, i as u64);
                    }
                    let mut got = 0;
                    while got < per {
                        match h.try_remove_key(&w) {
                            Ok(_) => got += 1,
                            Err(_) => thread::yield_now(),
                        }
                    }
                });
            }
        });
        assert_eq!(pool.total_len(), 0);
        let merged = pool.stats().merged();
        assert_eq!(merged.adds, (n * per) as u64);
        assert_eq!(merged.removes, (n * per) as u64);
    }

    #[test]
    fn cross_key_consumers_drain_producers() {
        // Producers add under two keys; consumers each insist on one key.
        let pool: KeyedPool<&'static str, u64> = KeyedPool::new(4);
        let total = 400;
        thread::scope(|s| {
            let mut p = pool.register();
            s.spawn(move || {
                for i in 0..total {
                    p.add(if i % 2 == 0 { "even" } else { "odd" }, i);
                }
            });
            for key in ["even", "odd"] {
                let mut c = pool.register();
                s.spawn(move || {
                    let mut got = 0;
                    while got < total / 2 {
                        match c.try_remove_key(&key) {
                            Ok(v) => {
                                assert_eq!(v % 2 == 0, key == "even", "keys never cross");
                                got += 1;
                            }
                            Err(_) => thread::yield_now(),
                        }
                    }
                });
            }
            let _spare = pool.register(); // a fourth, idle-ish participant
        });
        assert_eq!(pool.total_len(), 0);
    }

    #[test]
    fn ephemeral_keys_do_not_accumulate_resident_buckets() {
        // One key per "task": beyond the residency bound, drained buckets
        // are evicted, so removes keep finding live work in bounded time
        // instead of scanning an ever-growing prefix of empties.
        let pool: KeyedPool<u32, u32> = KeyedPool::new(1);
        let mut h = pool.register();
        for key in 0..10 * RESIDENT_BUCKETS_MAX as u32 {
            h.add(key, key);
            assert_eq!(h.try_remove_key(&key), Ok(key));
        }
        let resident = pool.shared.segments[0].buckets.lock().map.len();
        assert!(
            resident <= RESIDENT_BUCKETS_MAX + 1,
            "drained ephemeral buckets must be evicted, found {resident} resident"
        );
        // The pool still works normally afterwards.
        h.add(7, 77);
        assert_eq!(h.try_remove_any(), Ok((7, 77)));
    }

    #[test]
    fn live_buckets_do_not_count_against_the_residency_bound() {
        // The bound is on *empty* resident buckets only: with enough
        // permanently-live keys to push the total bucket count past the
        // bound, hot keys whose buckets empty briefly between cycles must
        // still stay resident (evicting them would re-allocate a bucket
        // and a map node on every cycle).
        let pool: KeyedPool<u32, u32> = KeyedPool::new(1);
        let mut h = pool.register();
        let pinned = RESIDENT_BUCKETS_MAX as u32; // live the whole test
        let hot = RESIDENT_BUCKETS_MAX as u32 / 2;
        for key in 0..pinned {
            h.add(key, 1);
        }
        for round in 0..3 {
            for key in pinned..pinned + hot {
                h.add(key, round);
                assert_eq!(h.try_remove_key(&key), Ok(round));
            }
        }
        let resident = pool.shared.segments[0].buckets.lock().map.len();
        assert_eq!(
            resident as u32,
            pinned + hot,
            "hot-key buckets stay resident beside {pinned} live ones"
        );
    }

    #[test]
    fn remove_any_prefers_local() {
        let pool: KeyedPool<u8, u32> = KeyedPool::new(2);
        let mut a = pool.register();
        let mut b = pool.register();
        a.add(7, 1);
        b.add(8, 2);
        let (k, _) = a.try_remove_any().unwrap();
        assert_eq!(k, 7, "local element preferred");
        assert_eq!(a.stats().steals, 0);
    }

    #[test]
    fn stats_deposited_on_drop() {
        let pool: KeyedPool<u8, u32> = KeyedPool::new(2);
        {
            let mut h = pool.register();
            h.add(1, 1);
            let _ = h.try_remove_any();
        }
        let stats = pool.stats();
        assert_eq!(stats.per_proc.len(), 1);
        assert_eq!(stats.merged().removes, 1);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_panics() {
        let _: KeyedPool<u8, u8> = KeyedPool::new(0);
    }

    #[test]
    fn builder_builds_with_timing() {
        let pool: KeyedPool<u8, u32> = KeyedPoolBuilder::new(3).timing(NullTiming::new()).build();
        assert_eq!(pool.segments(), 3);
        let mut h = pool.register();
        h.add(1, 7);
        assert_eq!(h.try_remove_key(&1), Ok(7));
    }

    #[test]
    fn batch_ops_move_pairs_in_bulk() {
        let pool: KeyedPool<u8, u32> = KeyedPool::new(2);
        let mut h = pool.register();
        h.add_batch([(1, 10), (2, 20), (1, 11)]);
        assert_eq!(pool.total_len(), 3);
        assert_eq!(pool.key_len(&1), 2);
        assert_eq!(h.stats().adds, 3);
        assert_eq!(h.stats().add_hist.count(), 1, "one batch, one latency sample");
        let batch = h.try_remove_batch(2);
        assert_eq!(batch.len(), 2);
        assert_eq!(pool.total_len(), 1);
        let rest: Vec<(u8, u32)> = h.drain().into_vec();
        assert_eq!(rest.len(), 1);
        assert_eq!(pool.total_len(), 0);
        assert_eq!(h.stats().removes, 3);
    }

    #[test]
    fn batch_remove_steals_when_local_is_empty() {
        let pool: KeyedPool<u8, u32> = KeyedPool::new(2);
        let mut thief = pool.register(); // home 0
        let mut victim = pool.register(); // home 1
        victim.add_batch((0..12u32).map(|i| (1u8, i)));
        // The any-key steal takes ceil(12/2) = 6 of the bucket; the batch
        // asks for 4 of them.
        let batch = thief.try_remove_batch(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(thief.stats().steals, 1);
        assert_eq!(thief.stats().elements_stolen, 6);
        assert_eq!(pool.total_len(), 8);
    }

    #[test]
    fn blocking_remove_key_gives_up_only_when_key_is_exhausted() {
        let pool: KeyedPool<u8, u32> = KeyedPool::new(4);
        let mut h = pool.register();
        h.add(1, 10);
        assert_eq!(h.remove_key(&1, WaitStrategy::Spin), Ok(10));
        // Key 9 is absent while key 1's residue... is also gone; an absent
        // key aborts terminally instead of burning the whole budget.
        h.add(1, 11);
        assert_eq!(h.remove_key(&9, WaitStrategy::Spin), Err(RemoveError::Aborted));
        assert_eq!(h.stats().aborted_removes, 1, "one attempt, not the full budget");
        assert_eq!(pool.total_len(), 1, "other keys untouched");
    }

    #[test]
    fn remove_key_blocks_until_the_right_key_arrives() {
        let pool: KeyedPool<u8, u32> = KeyedPool::new(2);
        thread::scope(|s| {
            let mut producer = pool.register();
            let mut consumer = pool.register();
            s.spawn(move || {
                // The wrong key first: it must not satisfy (or unpark-loop
                // confuse) the keyed waiter, which re-parks on wrong-key
                // traffic.
                producer.add(2, 200);
                thread::sleep(std::time::Duration::from_millis(2));
                producer.add(1, 100);
            });
            s.spawn(move || {
                assert_eq!(consumer.remove_key(&1, WaitStrategy::Block), Ok(100));
            });
        });
        assert_eq!(pool.key_len(&2), 1, "the other key's element is untouched");
    }

    #[test]
    fn keyed_close_wakes_blocked_removers_with_closed() {
        let pool: KeyedPool<u8, u32> = KeyedPool::new(2);
        thread::scope(|s| {
            let mut producer = pool.register();
            let mut consumer = pool.register();
            s.spawn(move || {
                producer.add(1, 10);
                producer.close();
            });
            s.spawn(move || {
                let mut got = 0;
                let err = loop {
                    match consumer.remove_key(&1, WaitStrategy::Block) {
                        Ok(_) => got += 1,
                        Err(err) => break err,
                    }
                };
                assert_eq!(got, 1, "pre-close residue delivered first");
                assert_eq!(err, RemoveError::Closed);
            });
        });
        assert!(pool.is_closed());
    }

    #[test]
    fn remove_key_timeout_expires_while_other_keys_flow() {
        let pool: KeyedPool<u8, u32> = KeyedPool::new(2);
        let mut h = pool.register();
        let _idle = pool.register(); // keeps the gate from firing
        h.add(2, 20);
        let t0 = std::time::Instant::now();
        assert_eq!(
            h.remove_key_timeout(&1, std::time::Duration::from_millis(15)),
            Err(RemoveError::Timeout)
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(15));
        assert_eq!(pool.key_len(&2), 1, "waiting for key 1 never consumed key 2");
    }

    #[test]
    fn blocking_any_remove_on_closed_drained_pool() {
        let pool: KeyedPool<u8, u32> = KeyedPool::new(2);
        let mut h = pool.register();
        h.add(3, 30);
        pool.close();
        assert_eq!(h.remove(WaitStrategy::Block), Ok((3, 30)), "drain before Closed");
        assert_eq!(h.remove(WaitStrategy::Block), Err(RemoveError::Closed));
        assert_eq!(h.try_remove_any(), Err(RemoveError::Closed));
    }

    #[test]
    fn pool_ops_vocabulary_is_generic_over_frontends() {
        // The same generic driver runs against the keyed handle.
        fn roundtrip<H: PoolOps>(h: &mut H, items: Vec<H::Item>) -> usize {
            let n = items.len();
            h.add_batch(items);
            let mut got = 0;
            while got < n {
                if h.remove(WaitStrategy::Spin).is_ok() {
                    got += 1;
                }
            }
            got
        }
        let pool: KeyedPool<u8, u32> = KeyedPool::new(2);
        let mut h = pool.register();
        let items: Vec<(u8, u32)> = (0..20).map(|i| (i as u8 % 3, i)).collect();
        assert_eq!(roundtrip(&mut h, items), 20);
        assert_eq!(pool.total_len(), 0);
    }

    #[test]
    fn manual_promote_demote_conserves_the_multiset() {
        let pool: KeyedPool<u8, u32> = KeyedPool::new(1);
        let mut h = pool.register();
        for v in 0..10 {
            h.add(5, v);
        }
        pool.promote_key(&5);
        assert_eq!(pool.key_len(&5), 10, "splitting moves, never drops");
        assert_eq!(pool.stats().pool.hot_buckets, 1);
        // Adds and removes keep flowing through the split bucket.
        for v in 10..20 {
            h.add(5, v);
        }
        assert_eq!(pool.key_len(&5), 20);
        pool.demote_key(&5);
        assert_eq!(pool.stats().pool.hot_buckets, 0);
        assert_eq!(pool.key_len(&5), 20, "merging moves, never drops");
        let mut got = std::collections::BTreeSet::new();
        for _ in 0..20 {
            got.insert(h.try_remove_key(&5).expect("all 20 still present"));
        }
        assert_eq!(got, (0..20).collect());
        let stats = pool.stats();
        assert_eq!(stats.pool.hotkey_promotions, 1);
        assert_eq!(stats.pool.hotkey_demotions, 1);
    }

    #[test]
    fn sampling_promotes_hot_keys_and_demotes_cooled_ones() {
        let pool: KeyedPool<u8, u32> = KeyedPoolBuilder::new(1)
            .hot_keys(HotKeyConfig {
                sample_every: 1,
                window: 8,
                sub_shards: 4,
                promote_pct: 50,
                demote_pct: 20,
            })
            .build();
        let mut h = pool.register();
        for v in 0..16 {
            h.add(7, v);
        }
        assert!(pool.stats().pool.hotkey_promotions >= 1, "a dominant key splits its bucket");
        assert_eq!(pool.stats().pool.hot_buckets, 1);
        assert_eq!(pool.key_len(&7), 16, "split under live adds loses nothing");
        // Traffic moves on: the window forgets key 7 and a later sampled
        // op's hysteresis sweep merges the bucket back.
        for key in 0..16u8 {
            h.add(100 + key, 0);
        }
        assert_eq!(pool.stats().pool.hot_buckets, 0, "cooled key demoted");
        assert!(pool.stats().pool.hotkey_demotions >= 1);
        assert_eq!(pool.key_len(&7), 16, "demotion under other traffic loses nothing");
        let mut got = std::collections::BTreeSet::new();
        for _ in 0..16 {
            got.insert(h.try_remove_key(&7).expect("all of key 7 present"));
        }
        assert_eq!(got, (0..16).collect());
    }

    #[test]
    fn uniform_traffic_never_promotes() {
        // Default knobs: promotion needs ~8% of a 256-sample window on one
        // key; 100 keys in round-robin peak at 1%.
        let pool: KeyedPool<u32, u32> = KeyedPool::new(2);
        let mut h = pool.register();
        for i in 0..2_000u32 {
            h.add(i % 100, i);
        }
        for _ in 0..2_000 {
            let _ = h.try_remove_any();
        }
        let stats = pool.stats();
        assert_eq!(stats.pool.hotkey_promotions, 0, "no skew, no splits");
        assert_eq!(stats.pool.hot_buckets, 0);
    }

    #[test]
    fn heat_weighted_steal_prefers_the_hot_bucket() {
        // Without heat, the steal sweep picks the largest bucket (see
        // remove_any_steals_largest_bucket). Here the *smaller* bucket is
        // hot: score = len·(1 + 4·heat) must rank 6 hot over 20 cold.
        let pool: KeyedPool<u8, u32> = KeyedPoolBuilder::new(2)
            .hot_keys(HotKeyConfig {
                sample_every: 1,
                window: 64,
                sub_shards: 2,
                promote_pct: 100, // never split: isolates the victim ranking
                demote_pct: 1,
            })
            .build();
        let mut thief = pool.register(); // home 0
        let mut victim = pool.register(); // home 1
                                          // The cold bulk arrives via a batch (batches are not sampled), so
                                          // the window sees only key-2 traffic.
        victim.add_batch((0..20u32).map(|v| (1u8, v)));
        for v in 0..6 {
            victim.add(2, v + 100);
        }
        // Only adds feed the window (producer-side sampling), so the heat
        // comes from the add half of each pair: 6 + 40 key-2 samples in a
        // 64-sample window → heat ≈ 0.72 → score 6·(1 + 4·0.72) ≈ 23 > 20.
        for _ in 0..40 {
            victim.add(2, 999);
            let _ = victim.try_remove_key(&2);
        }
        assert_eq!(pool.key_len(&2), 6);
        let (key, _) = thief.try_remove_any().expect("elements exist");
        assert_eq!(key, 2, "heat outweighs raw occupancy");
        assert_eq!(thief.stats().elements_stolen, 3, "ceil(6/2) of the hot bucket");
        assert_eq!(pool.key_len(&1), 20, "the cold bucket was not touched");
    }

    #[test]
    fn resident_buckets_knob_bounds_empties_and_counts_evictions() {
        let bound = 4;
        let pool: KeyedPool<u32, u32> =
            KeyedPoolBuilder::new(1).resident_buckets_max(bound).build();
        let mut h = pool.register();
        for key in 0..100 {
            h.add(key, key);
            assert_eq!(h.try_remove_key(&key), Ok(key));
        }
        let resident = pool.shared.segments[0].buckets.lock().map.len();
        assert!(resident <= bound + 1, "bound {bound} not honored: {resident} resident");
        let stats = pool.stats();
        assert!(
            stats.pool.bucket_evictions >= (100 - bound - 1) as u64,
            "evictions counted, got {}",
            stats.pool.bucket_evictions
        );
    }

    #[test]
    fn close_wakes_blocked_removers_across_a_split() {
        // The close()/timeout contract must survive a bucket split: parked
        // keyed removers drain a split bucket's residue, then see Closed.
        let pool: KeyedPool<u8, u32> = KeyedPool::new(2);
        pool.promote_key(&1);
        thread::scope(|s| {
            let mut producer = pool.register();
            let mut consumer = pool.register();
            s.spawn(move || {
                producer.add(1, 10);
                producer.close();
            });
            s.spawn(move || {
                let mut got = 0;
                let err = loop {
                    match consumer.remove_key(&1, WaitStrategy::Block) {
                        Ok(_) => got += 1,
                        Err(err) => break err,
                    }
                };
                assert_eq!(got, 1, "split-bucket residue delivered before Closed");
                assert_eq!(err, RemoveError::Closed);
            });
        });
    }

    #[test]
    fn remove_key_timeout_expires_across_a_split() {
        let pool: KeyedPool<u8, u32> = KeyedPool::new(2);
        pool.promote_key(&2);
        let mut h = pool.register();
        let _idle = pool.register(); // keeps the gate from firing
        h.add(2, 20);
        let t0 = std::time::Instant::now();
        assert_eq!(
            h.remove_key_timeout(&1, std::time::Duration::from_millis(15)),
            Err(RemoveError::Timeout)
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(15));
        assert_eq!(pool.key_len(&2), 1, "the split bucket's element is untouched");
    }

    #[test]
    fn stale_hot_cache_falls_back_after_demotion() {
        let pool: KeyedPool<u8, u32> = KeyedPoolBuilder::new(1)
            .hot_keys(HotKeyConfig {
                sample_every: 1,
                window: 8,
                sub_shards: 2,
                promote_pct: 50,
                demote_pct: 20,
            })
            .build();
        let mut h = pool.register();
        for v in 0..8 {
            h.add(3, v);
        }
        assert_eq!(pool.stats().pool.hot_buckets, 1);
        // Demote behind the handle's back: its cached split bucket is now
        // sealed, so the next ops must bounce to the routed path and still
        // land correctly.
        pool.demote_key(&3);
        let mut h2 = pool.register();
        h2.add(3, 100);
        assert_eq!(pool.key_len(&3), 9);
        let mut got = std::collections::BTreeSet::new();
        for _ in 0..9 {
            got.insert(h2.try_remove_key(&3).expect("all present"));
        }
        assert_eq!(got, (0..8).chain([100]).collect());
    }
}
