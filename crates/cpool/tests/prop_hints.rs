//! Property-based tests for the hint board: arbitrary interleavings of
//! post/donate/take/cancel against a model, with exact conservation.

use proptest::prelude::*;

use cpool::{HintBoard, ProcId};

#[derive(Clone, Copy, Debug)]
enum Op {
    Post(u8),
    Donate(u32),
    Take(u8),
    Cancel(u8),
}

fn script(procs: u8) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..procs).prop_map(Op::Post),
            (0u32..10_000).prop_map(Op::Donate),
            (0..procs).prop_map(Op::Take),
            (0..procs).prop_map(Op::Cancel),
        ],
        0..300,
    )
}

/// Model of one mailbox.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
enum Slot {
    #[default]
    Idle,
    Waiting,
    Delivered(u32),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The board agrees with a sequential model on every observable after
    /// every step: waiting count, delivery visibility, and which element
    /// each take/cancel returns. Donations and refusals conserve elements.
    #[test]
    fn board_matches_sequential_model(ops in script(4)) {
        let procs = 4usize;
        let board: HintBoard<u32> = HintBoard::new(procs);
        let mut model = vec![Slot::Idle; procs];

        let model_waiting =
            |m: &[Slot]| m.iter().filter(|s| matches!(s, Slot::Waiting)).count();

        for op in &ops {
            match op {
                Op::Post(p) => {
                    let p = *p as usize;
                    let accepted = board.post(ProcId::new(p));
                    prop_assert_eq!(accepted, model[p] == Slot::Idle);
                    if accepted {
                        model[p] = Slot::Waiting;
                    }
                }
                Op::Donate(v) => {
                    match board.try_donate(*v) {
                        Ok(receiver) => {
                            let r = receiver.index();
                            prop_assert_eq!(model[r], Slot::Waiting,
                                "donations land on posted processes");
                            model[r] = Slot::Delivered(*v);
                        }
                        Err(back) => {
                            prop_assert_eq!(back, *v, "refusal returns the element");
                            prop_assert_eq!(model_waiting(&model), 0,
                                "refusal only when nobody waits");
                        }
                    }
                }
                Op::Take(p) => {
                    let p = *p as usize;
                    let got = board.take_delivery(ProcId::new(p));
                    match model[p] {
                        Slot::Delivered(v) => {
                            prop_assert_eq!(got, Some(v));
                            model[p] = Slot::Idle;
                        }
                        _ => prop_assert_eq!(got, None),
                    }
                }
                Op::Cancel(p) => {
                    let p = *p as usize;
                    let got = board.cancel(ProcId::new(p));
                    match model[p] {
                        Slot::Delivered(v) => prop_assert_eq!(got, Some(v)),
                        _ => prop_assert_eq!(got, None),
                    }
                    model[p] = Slot::Idle;
                }
            }
            prop_assert_eq!(board.waiting(), model_waiting(&model));
            for (i, slot) in model.iter().enumerate() {
                prop_assert_eq!(
                    board.delivered(ProcId::new(i)),
                    matches!(slot, Slot::Delivered(_)),
                    "slot {} visibility", i
                );
            }
        }
    }

    /// Concurrent stress: every donated element is either refused or taken
    /// exactly once; the board never fabricates or loses elements.
    #[test]
    fn concurrent_conservation(donors in 1usize..4, elements in 1u32..300) {
        let procs = 3usize;
        let board: HintBoard<u32> = HintBoard::new(procs);
        let taken = std::sync::Mutex::new(Vec::new());
        let refused = std::sync::Mutex::new(Vec::new());
        let done = std::sync::atomic::AtomicBool::new(false);

        std::thread::scope(|s| {
            for p in 0..procs {
                let board = &board;
                let taken = &taken;
                let done = &done;
                s.spawn(move || {
                    let me = ProcId::new(p);
                    while !done.load(std::sync::atomic::Ordering::Acquire) {
                        board.post(me);
                        if let Some(v) = board.take_delivery(me) {
                            taken.lock().unwrap().push(v);
                        }
                        std::thread::yield_now();
                    }
                    // Drain whatever arrived before the stop signal.
                    if let Some(v) = board.cancel(me) {
                        taken.lock().unwrap().push(v);
                    }
                });
            }
            let handles: Vec<_> = (0..donors)
                .map(|d| {
                    let board = &board;
                    let refused = &refused;
                    s.spawn(move || {
                        for i in 0..elements {
                            let v = d as u32 * 1_000_000 + i;
                            if let Err(back) = board.try_donate(v) {
                                refused.lock().unwrap().push(back);
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("donor finished");
            }
            done.store(true, std::sync::atomic::Ordering::Release);
        });

        let mut all = taken.into_inner().unwrap();
        all.extend(refused.into_inner().unwrap());
        all.sort_unstable();
        let mut expected: Vec<u32> = (0..donors as u32)
            .flat_map(|d| (0..elements).map(move |i| d * 1_000_000 + i))
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(all, expected, "taken + refused == donated, exactly once each");
    }
}
