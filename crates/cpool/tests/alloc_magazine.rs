//! The magazine layer's steady-state guarantee: **once warmed, the
//! magazine hit/flush/refill cycle performs zero heap allocations**.
//!
//! Magazines are bounded `Vec`s recycled between the handle and the
//! depot's shell ring; the depot itself rides the same lock-free free
//! lists as the transfer layer (see `tests/alloc_steal.rs` for the steal
//! path's identical guarantee). This file installs a counting
//! `#[global_allocator]` and pins the claim for the pure-hit steady state
//! and for churn deep enough to cycle full magazines through the depot.
//!
//! Like its siblings, the test lives in its own integration-test binary
//! (a global allocator is process-wide) and counting is scoped to the
//! measuring thread via an armed thread-local.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use cpool::{KeyedPoolBuilder, LinearSearch, Pool, PoolBuilder, VecSegment};

/// Counts allocator hits (alloc + realloc) from the armed thread.
struct CountingAlloc;

static HITS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    // `const` init: reading this inside the allocator performs no lazy
    // initialization and therefore cannot itself allocate or recurse.
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

fn armed() -> bool {
    ARMED.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            HITS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if armed() {
            HITS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            HITS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `op` with this thread's counter armed and returns the number of
/// allocator hits it caused.
fn count_allocs(op: impl FnOnce()) -> usize {
    HITS.store(0, Ordering::SeqCst);
    ARMED.with(|armed| armed.set(true));
    op();
    ARMED.with(|armed| armed.set(false));
    HITS.load(Ordering::SeqCst)
}

const WARMUP_ROUNDS: usize = 50;
const MEASURED_ROUNDS: usize = 50;
/// Adds (and removes) per round — balanced, so rounds leave the pool as
/// they found it.
const PER_ROUND: u64 = 16;

/// The pure-hit steady state: with the magazine deeper than the burst,
/// every add is a thread-local push and every remove a thread-local pop —
/// no depot traffic, no segment traffic, and no allocator traffic.
#[test]
fn magazine_hit_steady_state_allocates_nothing() {
    let pool: Pool<VecSegment<u64>, LinearSearch> =
        PoolBuilder::new(1).handle_cache(2 * PER_ROUND as usize).build();
    let mut h = pool.register();
    for _ in 0..WARMUP_ROUNDS {
        for i in 0..PER_ROUND {
            h.add(i);
        }
        for _ in 0..PER_ROUND {
            h.try_remove().expect("added this round");
        }
    }
    let hits_before = h.stats().magazine_hits;
    let allocs = count_allocs(|| {
        for _ in 0..MEASURED_ROUNDS {
            for i in 0..PER_ROUND {
                h.add(i);
            }
            for _ in 0..PER_ROUND {
                h.try_remove().expect("added this round");
            }
        }
    });
    let measured_ops = 2 * PER_ROUND * MEASURED_ROUNDS as u64;
    assert_eq!(
        h.stats().magazine_hits - hits_before,
        measured_ops,
        "every measured op must be a magazine hit"
    );
    assert_eq!(
        allocs, 0,
        "pure-hit rounds ({MEASURED_ROUNDS} x {PER_ROUND} add/remove pairs) must not allocate"
    );
}

/// The depot-cycle steady state: a magazine far shallower than the burst
/// forces full magazines through the depot (exchange on add, refill on
/// remove) and the overflow into the segments — and the whole cycle still
/// recycles shells and segment capacity instead of allocating.
#[test]
fn magazine_depot_cycle_steady_state_allocates_nothing() {
    let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(1).handle_cache(2).build();
    let mut h = pool.register();
    for _ in 0..WARMUP_ROUNDS {
        for i in 0..PER_ROUND {
            h.add(i);
        }
        for _ in 0..PER_ROUND {
            h.try_remove().expect("added this round");
        }
    }
    assert!(h.stats().depot_exchanges > 0, "depth 2 under a 16-burst must cycle the depot");
    let exchanges_before = h.stats().depot_exchanges;
    let allocs = count_allocs(|| {
        for _ in 0..MEASURED_ROUNDS {
            for i in 0..PER_ROUND {
                h.add(i);
            }
            for _ in 0..PER_ROUND {
                h.try_remove().expect("added this round");
            }
        }
    });
    assert!(
        h.stats().depot_exchanges > exchanges_before,
        "the measured rounds kept cycling magazines through the depot"
    );
    assert_eq!(
        allocs, 0,
        "depot exchange/refill rounds ({MEASURED_ROUNDS} x {PER_ROUND} pairs) must not allocate"
    );
}

/// The keyed twin of the pure-hit guarantee: mixed-key magazines cache
/// `(key, value)` pairs with the same recycled containers.
#[test]
fn keyed_magazine_hit_steady_state_allocates_nothing() {
    let pool: cpool::KeyedPool<u8, u64> =
        KeyedPoolBuilder::new(1).handle_cache(2 * PER_ROUND as usize).build();
    let mut h = pool.register();
    for _ in 0..WARMUP_ROUNDS {
        for i in 0..PER_ROUND {
            h.add((i % 3) as u8, i);
        }
        for _ in 0..PER_ROUND {
            h.try_remove_any().expect("added this round");
        }
    }
    let hits_before = h.stats().magazine_hits;
    let allocs = count_allocs(|| {
        for _ in 0..MEASURED_ROUNDS {
            for i in 0..PER_ROUND {
                h.add((i % 3) as u8, i);
            }
            for _ in 0..PER_ROUND {
                h.try_remove_any().expect("added this round");
            }
        }
    });
    let measured_ops = 2 * PER_ROUND * MEASURED_ROUNDS as u64;
    assert_eq!(
        h.stats().magazine_hits - hits_before,
        measured_ops,
        "every measured keyed op must be a magazine hit"
    );
    assert_eq!(allocs, 0, "keyed pure-hit rounds must not allocate");
}
