//! Property-based tests for the segment implementations: every segment kind
//! must behave like a simple model (a multiset / a counter) under arbitrary
//! operation sequences, and `steal_half` must obey the paper's ⌈n/2⌉ rule.

use proptest::prelude::*;

use cpool::segment::steal_count;
use cpool::{AtomicCounter, BlockSegment, LockedCounter, Segment, VecSegment};

/// One step of a generated workload.
#[derive(Clone, Copy, Debug)]
enum Step {
    Add(u32),
    Remove,
    StealHalf,
    AddBulk(u8),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..1000).prop_map(Step::Add),
            Just(Step::Remove),
            Just(Step::StealHalf),
            (0u8..16).prop_map(Step::AddBulk),
        ],
        0..200,
    )
}

/// Drives a counting segment and a plain integer model in lockstep.
fn check_counting_model<S: Segment<Item = ()>>(script: &[Step]) {
    let seg = S::new();
    let mut model: usize = 0;
    for step in script {
        match step {
            Step::Add(_) => {
                seg.add(());
                model += 1;
            }
            Step::Remove => {
                let got = seg.try_remove().is_some();
                assert_eq!(got, model > 0, "remove succeeds iff non-empty");
                if got {
                    model -= 1;
                }
            }
            Step::StealHalf => {
                let stolen = seg.steal_half();
                assert_eq!(stolen.len(), steal_count(model), "⌈n/2⌉ rule");
                model -= stolen.len();
            }
            Step::AddBulk(k) => {
                seg.add_bulk(vec![(); *k as usize]);
                model += *k as usize;
            }
        }
        assert_eq!(seg.len(), model, "len tracks the model");
        assert_eq!(seg.is_empty(), model == 0);
    }
}

/// Drives an element segment and a multiset model in lockstep: elements are
/// conserved and never invented.
fn check_element_model<S: Segment<Item = u32>>(script: &[Step]) {
    let seg = S::new();
    let mut model: Vec<u32> = Vec::new();
    let mut next_bulk = 10_000u32;
    for step in script {
        match step {
            Step::Add(v) => {
                seg.add(*v);
                model.push(*v);
            }
            Step::Remove => match seg.try_remove() {
                Some(v) => {
                    let at = model.iter().position(|&m| m == v).expect("removed a known value");
                    model.swap_remove(at);
                }
                None => assert!(model.is_empty()),
            },
            Step::StealHalf => {
                let stolen = seg.steal_half();
                assert_eq!(stolen.len(), steal_count(model.len()));
                for v in stolen {
                    let at = model.iter().position(|&m| m == v).expect("stole a known value");
                    model.swap_remove(at);
                }
            }
            Step::AddBulk(k) => {
                let batch: Vec<u32> = (0..*k as u32).map(|i| next_bulk + i).collect();
                next_bulk += u32::from(*k);
                model.extend(&batch);
                seg.add_bulk(batch);
            }
        }
        assert_eq!(seg.len(), model.len());
    }
    // Drain and compare the full multiset.
    let mut rest = Vec::new();
    while let Some(v) = seg.try_remove() {
        rest.push(v);
    }
    rest.sort_unstable();
    model.sort_unstable();
    assert_eq!(rest, model, "the segment holds exactly the model's elements");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn locked_counter_matches_model(script in steps()) {
        check_counting_model::<LockedCounter>(&script);
    }

    #[test]
    fn atomic_counter_matches_model(script in steps()) {
        check_counting_model::<AtomicCounter>(&script);
    }

    #[test]
    fn vec_segment_matches_model(script in steps()) {
        check_element_model::<VecSegment<u32>>(&script);
    }

    #[test]
    fn block_segment_matches_model(script in steps()) {
        check_element_model::<BlockSegment<u32>>(&script);
    }

    /// The steal rule itself: thief takes ⌈n/2⌉, victim keeps ⌊n/2⌋, and a
    /// repeated steal geometrically drains any segment in ≤ log2(n)+1 steps.
    #[test]
    fn steal_count_properties(n in 0usize..1_000_000) {
        let taken = steal_count(n);
        prop_assert_eq!(taken + n / 2, n, "takes ⌈n/2⌉, leaves ⌊n/2⌋");
        prop_assert!(taken <= n);
        if n > 0 {
            prop_assert!(taken >= 1, "a non-empty segment always yields");
        }
        // Geometric drain bound.
        let mut left = n;
        let mut rounds = 0;
        while left > 0 {
            left -= steal_count(left);
            rounds += 1;
        }
        prop_assert!(rounds <= n.max(1).ilog2() as usize + 2, "drains in O(log n) steals");
    }

    /// Concurrent thieves on one segment: nothing is lost or duplicated.
    #[test]
    fn concurrent_steals_conserve(initial in 1usize..400, thieves in 1usize..6) {
        let seg = VecSegment::<u32>::new();
        for i in 0..initial {
            seg.add(i as u32);
        }
        let mut batches: Vec<Vec<u32>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..thieves)
                .map(|_| s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let b = seg.steal_half();
                        if b.is_empty() {
                            break mine;
                        }
                        mine.extend(b);
                    }
                }))
                .collect();
            for h in handles {
                batches.push(h.join().expect("thief panicked"));
            }
        });
        let mut all: Vec<u32> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..initial as u32).collect::<Vec<_>>());
        prop_assert_eq!(seg.len(), 0);
    }
}
