//! Property-based tests for the segment implementations: every segment kind
//! must behave like a simple model (a multiset / a counter) under arbitrary
//! operation sequences, `steal_half` must obey the paper's ⌈n/2⌉ rule, and
//! the batch-typed transfer layer must conserve elements — a steal→refill
//! hop between segments is a multiset identity, whatever currency
//! ([`Vec`], `CountBatch`, `BlockBatch`) the segment family transfers in.

use proptest::prelude::*;

use cpool::segment::steal_count;
use cpool::transfer::TransferBatch;
use cpool::{
    AtomicCounter, BlockSegment, LaneSegment, LfSegment, LockedCounter, Segment, VecSegment,
};

/// One step of a generated workload.
#[derive(Clone, Copy, Debug)]
enum Step {
    Add(u32),
    Remove,
    StealHalf,
    AddBulk(u8),
    RemoveUpTo(u8),
    DrainAll,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..1000).prop_map(Step::Add),
            Just(Step::Remove),
            Just(Step::StealHalf),
            (0u8..16).prop_map(Step::AddBulk),
            (0u8..24).prop_map(Step::RemoveUpTo),
            Just(Step::DrainAll),
        ],
        0..200,
    )
}

/// Drives a counting segment and a plain integer model in lockstep, through
/// the full batch-typed surface.
fn check_counting_model<S: Segment<Item = ()>>(script: &[Step]) {
    let seg = S::new();
    let mut model: usize = 0;
    for step in script {
        match step {
            Step::Add(_) => {
                seg.add(());
                model += 1;
            }
            Step::Remove => {
                let got = seg.try_remove().is_some();
                assert_eq!(got, model > 0, "remove succeeds iff non-empty");
                if got {
                    model -= 1;
                }
            }
            Step::StealHalf => {
                let stolen = seg.steal_half();
                assert_eq!(stolen.len(), steal_count(model), "⌈n/2⌉ rule");
                model -= stolen.len();
            }
            Step::AddBulk(k) => {
                seg.add_bulk(S::Batch::from_vec(vec![(); *k as usize]));
                model += *k as usize;
            }
            Step::RemoveUpTo(k) => {
                let got = seg.remove_up_to(*k as usize);
                assert_eq!(got.len(), model.min(*k as usize), "bounded by occupancy");
                model -= got.len();
            }
            Step::DrainAll => {
                let got = seg.drain_all();
                assert_eq!(got.len(), model, "drain takes everything");
                model = 0;
            }
        }
        assert_eq!(seg.len(), model, "len tracks the model");
        assert_eq!(seg.is_empty(), model == 0);
    }
}

/// Drives an element segment and a multiset model in lockstep: elements are
/// conserved and never invented, whichever batch currency they travel in.
fn check_element_model<S: Segment<Item = u32>>(script: &[Step]) {
    let seg = S::new();
    let mut model: Vec<u32> = Vec::new();
    let mut next_bulk = 10_000u32;
    let drain_from_model = |model: &mut Vec<u32>, batch: S::Batch| {
        for v in batch.into_vec() {
            let at = model.iter().position(|&m| m == v).expect("batched a known value");
            model.swap_remove(at);
        }
    };
    for step in script {
        match step {
            Step::Add(v) => {
                seg.add(*v);
                model.push(*v);
            }
            Step::Remove => match seg.try_remove() {
                Some(v) => {
                    let at = model.iter().position(|&m| m == v).expect("removed a known value");
                    model.swap_remove(at);
                }
                None => assert!(model.is_empty()),
            },
            Step::StealHalf => {
                let stolen = seg.steal_half();
                assert_eq!(stolen.len(), steal_count(model.len()));
                drain_from_model(&mut model, stolen);
            }
            Step::AddBulk(k) => {
                let batch: Vec<u32> = (0..*k as u32).map(|i| next_bulk + i).collect();
                next_bulk += u32::from(*k);
                model.extend(&batch);
                seg.add_bulk(S::Batch::from_vec(batch));
            }
            Step::RemoveUpTo(k) => {
                let got = seg.remove_up_to(*k as usize);
                assert_eq!(got.len(), model.len().min(*k as usize));
                drain_from_model(&mut model, got);
            }
            Step::DrainAll => {
                let got = seg.drain_all();
                assert_eq!(got.len(), model.len());
                drain_from_model(&mut model, got);
                assert!(model.is_empty());
            }
        }
        assert_eq!(seg.len(), model.len());
    }
    // Drain and compare the full multiset.
    let mut rest = Vec::new();
    while let Some(v) = seg.try_remove() {
        rest.push(v);
    }
    rest.sort_unstable();
    model.sort_unstable();
    assert_eq!(rest, model, "the segment holds exactly the model's elements");
}

/// The steal→refill identity, run generically against any segment family:
/// interleaved steals from a victim family member refilled into a thief
/// member (the pool's two-phase transfer), mixed with single-element and
/// batched traffic, never create or destroy an element. Checked on the
/// *count* so it covers counting segments too; the element-level multiset
/// version rides `check_element_model`.
fn check_transfer_conservation<S: Segment<Item = ()>>(script: &[Step], seed_elems: usize) {
    let family = S::new_family(2);
    let (victim, thief) = (&family[0], &family[1]);
    for _ in 0..seed_elems {
        victim.add(());
    }
    let mut total = seed_elems;
    for step in script {
        match step {
            Step::Add(_) => {
                victim.add(());
                total += 1;
            }
            Step::Remove => {
                if thief.try_remove().is_some() {
                    total -= 1;
                }
            }
            Step::StealHalf => {
                // The two-phase transfer: drain the victim, refill the
                // thief, no element in flight afterwards.
                let stolen = victim.steal_half();
                let moved = stolen.len();
                thief.add_bulk(stolen);
                assert_eq!(victim.len() + thief.len(), total, "steal→refill conserves ({moved})");
            }
            Step::AddBulk(k) => {
                thief.add_bulk(S::Batch::from_vec(vec![(); *k as usize]));
                total += *k as usize;
            }
            Step::RemoveUpTo(k) => {
                total -= victim.remove_up_to(*k as usize).len();
            }
            Step::DrainAll => {
                // Drain one side and push everything to the other: the
                // harshest whole-batch hop.
                let all = thief.drain_all();
                victim.add_bulk(all);
            }
        }
        assert_eq!(victim.len() + thief.len(), total, "family-wide conservation");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn locked_counter_matches_model(script in steps()) {
        check_counting_model::<LockedCounter>(&script);
    }

    #[test]
    fn atomic_counter_matches_model(script in steps()) {
        check_counting_model::<AtomicCounter>(&script);
    }

    #[test]
    fn vec_segment_matches_model(script in steps()) {
        check_element_model::<VecSegment<u32>>(&script);
    }

    #[test]
    fn block_segment_matches_model(script in steps()) {
        check_element_model::<BlockSegment<u32>>(&script);
    }

    #[test]
    fn lf_segment_matches_model(script in steps()) {
        check_element_model::<LfSegment<u32>>(&script);
    }

    #[test]
    fn lane_over_vec_matches_model(script in steps()) {
        check_element_model::<LaneSegment<VecSegment<u32>, 4>>(&script);
    }

    #[test]
    fn lane_over_block_matches_model(script in steps()) {
        check_element_model::<LaneSegment<BlockSegment<u32>, 2>>(&script);
    }

    #[test]
    fn lane_over_lf_matches_model(script in steps()) {
        check_element_model::<LaneSegment<LfSegment<u32>, 3>>(&script);
    }

    #[test]
    fn lane_over_counter_matches_model(script in steps()) {
        check_counting_model::<LaneSegment<AtomicCounter, 4>>(&script);
    }

    // The generic steal→refill conservation property, against all the
    // segment families (counting ones model the elements as units).

    #[test]
    fn locked_counter_transfer_conserves(script in steps(), seed in 0usize..64) {
        check_transfer_conservation::<LockedCounter>(&script, seed);
    }

    #[test]
    fn atomic_counter_transfer_conserves(script in steps(), seed in 0usize..64) {
        check_transfer_conservation::<AtomicCounter>(&script, seed);
    }

    #[test]
    fn vec_segment_transfer_conserves(script in steps(), seed in 0usize..64) {
        check_transfer_conservation::<VecSegment<()>>(&script, seed);
    }

    #[test]
    fn block_segment_transfer_conserves(script in steps(), seed in 0usize..64) {
        check_transfer_conservation::<BlockSegment<()>>(&script, seed);
    }

    #[test]
    fn lf_segment_transfer_conserves(script in steps(), seed in 0usize..64) {
        check_transfer_conservation::<LfSegment<()>>(&script, seed);
    }

    #[test]
    fn lane_over_vec_transfer_conserves(script in steps(), seed in 0usize..64) {
        check_transfer_conservation::<LaneSegment<VecSegment<()>, 4>>(&script, seed);
    }

    #[test]
    fn lane_over_block_transfer_conserves(script in steps(), seed in 0usize..64) {
        check_transfer_conservation::<LaneSegment<BlockSegment<()>, 2>>(&script, seed);
    }

    /// Element-level steal→refill multiset identity between two block
    /// segments: the zero-copy block hop moves exactly the stolen values.
    #[test]
    fn block_steal_refill_multiset_identity(
        initial in 0usize..300,
        hops in 1usize..8,
    ) {
        let family = <BlockSegment<u32> as Segment>::new_family(2);
        for i in 0..initial as u32 {
            family[0].add(i);
        }
        for hop in 0..hops {
            let (victim, thief) = (&family[hop % 2], &family[(hop + 1) % 2]);
            let stolen = victim.steal_half();
            prop_assert_eq!(stolen.len(), steal_count(victim.len() + stolen.len()) , "⌈n/2⌉");
            thief.add_bulk(stolen);
        }
        // Whatever bounced between the two segments, the multiset is intact.
        let mut all: Vec<u32> = family[0].drain_all().into_vec();
        all.extend(family[1].drain_all().into_vec());
        all.sort_unstable();
        prop_assert_eq!(all, (0..initial as u32).collect::<Vec<_>>());
    }

    /// The steal rule itself: thief takes ⌈n/2⌉, victim keeps ⌊n/2⌋, and a
    /// repeated steal geometrically drains any segment in ≤ log2(n)+1 steps.
    #[test]
    fn steal_count_properties(n in 0usize..1_000_000) {
        let taken = steal_count(n);
        prop_assert_eq!(taken + n / 2, n, "takes ⌈n/2⌉, leaves ⌊n/2⌋");
        prop_assert!(taken <= n);
        if n > 0 {
            prop_assert!(taken >= 1, "a non-empty segment always yields");
        }
        // Geometric drain bound.
        let mut left = n;
        let mut rounds = 0;
        while left > 0 {
            left -= steal_count(left);
            rounds += 1;
        }
        prop_assert!(rounds <= n.max(1).ilog2() as usize + 2, "drains in O(log n) steals");
    }

    /// Concurrent thieves on one segment: nothing is lost or duplicated.
    #[test]
    fn concurrent_steals_conserve(initial in 1usize..400, thieves in 1usize..6) {
        let seg = VecSegment::<u32>::new();
        for i in 0..initial {
            seg.add(i as u32);
        }
        let mut batches: Vec<Vec<u32>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..thieves)
                .map(|_| s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let b = seg.steal_half();
                        if b.is_empty() {
                            break mine;
                        }
                        mine.extend(b);
                    }
                }))
                .collect();
            for h in handles {
                batches.push(h.join().expect("thief panicked"));
            }
        });
        let mut all: Vec<u32> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..initial as u32).collect::<Vec<_>>());
        prop_assert_eq!(seg.len(), 0);
    }

    /// Concurrent thieves on the lock-free segment: the CAS-reservation
    /// split never loses or duplicates an element.
    #[test]
    fn concurrent_lf_steals_conserve(initial in 1usize..400, thieves in 1usize..6) {
        let seg = LfSegment::<u32>::new();
        for i in 0..initial {
            seg.add(i as u32);
        }
        let mut batches: Vec<Vec<u32>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..thieves)
                .map(|_| s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let b = seg.steal_half();
                        if b.is_empty() {
                            break mine;
                        }
                        mine.extend(b);
                    }
                }))
                .collect();
            for h in handles {
                batches.push(h.join().expect("thief panicked"));
            }
        });
        let mut all: Vec<u32> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..initial as u32).collect::<Vec<_>>());
        prop_assert_eq!(seg.len(), 0);
    }

    /// Concurrent thieves racing across a sharded segment's lanes: the
    /// per-lane sweeps together conserve the whole multiset.
    #[test]
    fn concurrent_lane_steals_conserve(initial in 1usize..400, thieves in 1usize..6) {
        let seg = LaneSegment::<VecSegment<u32>, 4>::new();
        for i in 0..initial {
            seg.add(i as u32);
        }
        let mut batches: Vec<Vec<u32>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..thieves)
                .map(|_| s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let b = seg.steal_half();
                        if b.is_empty() {
                            break mine;
                        }
                        mine.extend(b);
                    }
                }))
                .collect();
            for h in handles {
                batches.push(h.join().expect("thief panicked"));
            }
        });
        let mut all: Vec<u32> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..initial as u32).collect::<Vec<_>>());
        prop_assert_eq!(seg.len(), 0);
    }

    /// Concurrent block thieves: whole-block hand-over under contention
    /// still conserves the multiset.
    #[test]
    fn concurrent_block_steals_conserve(initial in 1usize..400, thieves in 1usize..6) {
        let seg = BlockSegment::<u32>::with_block_size(8);
        for i in 0..initial {
            seg.add(i as u32);
        }
        let mut batches: Vec<Vec<u32>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..thieves)
                .map(|_| s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let b = seg.steal_half();
                        if b.is_empty() {
                            break mine;
                        }
                        mine.extend(b.into_vec());
                    }
                }))
                .collect();
            for h in handles {
                batches.push(h.join().expect("thief panicked"));
            }
        });
        let mut all: Vec<u32> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..initial as u32).collect::<Vec<_>>());
        prop_assert_eq!(seg.len(), 0);
    }
}
