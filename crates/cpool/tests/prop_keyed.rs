//! Property-based tests for the keyed pool (distinguishable elements):
//! arbitrary keyed scripts against a multimap model.

use std::collections::BTreeMap;

use proptest::prelude::*;

use cpool::{KeyedPool, RemoveError};

#[derive(Clone, Copy, Debug)]
enum Op {
    Add(u8, u16),
    RemoveKey(u8),
    RemoveAny,
}

fn script() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            ((0u8..5), (0u16..1000)).prop_map(|(k, v)| Op::Add(k, v)),
            (0u8..5).prop_map(Op::RemoveKey),
            Just(Op::RemoveAny),
        ],
        0..250,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single process: the keyed pool behaves exactly like a multimap.
    /// Keyed removes return values of the requested key; totals and per-key
    /// counts track the model at every step.
    #[test]
    fn keyed_pool_is_a_multimap(ops in script(), segs in 1usize..7) {
        let pool: KeyedPool<u8, u16> = KeyedPool::new(segs);
        let mut h = pool.register();
        let mut model: BTreeMap<u8, Vec<u16>> = BTreeMap::new();
        let mut model_len = 0usize;

        for op in &ops {
            match op {
                Op::Add(k, v) => {
                    h.add(*k, *v);
                    model.entry(*k).or_default().push(*v);
                    model_len += 1;
                }
                Op::RemoveKey(k) => {
                    let bucket_len = model.get(k).map_or(0, Vec::len);
                    if bucket_len == 0 {
                        // A lone process aborts once its lap finds nothing.
                        prop_assert_eq!(h.try_remove_key(k), Err(RemoveError::Aborted));
                    } else {
                        let v = h.try_remove_key(k).expect("key present");
                        let bucket = model.get_mut(k).expect("model has key");
                        let at = bucket.iter().position(|&m| m == v)
                            .expect("returned value belongs to the key");
                        bucket.swap_remove(at);
                        if bucket.is_empty() {
                            model.remove(k);
                        }
                        model_len -= 1;
                    }
                }
                Op::RemoveAny => {
                    if model_len == 0 {
                        prop_assert_eq!(h.try_remove_any(), Err(RemoveError::Aborted));
                    } else {
                        let (k, v) = h.try_remove_any().expect("pool non-empty");
                        let bucket = model.get_mut(&k).expect("model has key");
                        let at = bucket.iter().position(|&m| m == v)
                            .expect("returned value belongs to the key");
                        bucket.swap_remove(at);
                        if bucket.is_empty() {
                            model.remove(&k);
                        }
                        model_len -= 1;
                    }
                }
            }
            prop_assert_eq!(pool.total_len(), model_len);
            for (k, bucket) in &model {
                prop_assert_eq!(pool.key_len(k), bucket.len(), "key {}", k);
            }
        }
    }

    /// Keyed steals never cross keys: with values encoding their key, every
    /// keyed remove returns a matching value, whatever got stolen meanwhile.
    #[test]
    fn keyed_steals_respect_keys(
        adds in prop::collection::vec((0u8..3, 0u16..500), 1..150),
        segs in 2usize..5,
    ) {
        let pool: KeyedPool<u8, u32> = KeyedPool::new(segs);
        // Producer on segment 0; consumer homes elsewhere so removes steal.
        let mut producer = pool.register();
        let mut consumer = pool.register();
        let mut counts: BTreeMap<u8, usize> = BTreeMap::new();
        for (k, v) in &adds {
            // Encode the key in the value to catch cross-key leaks.
            producer.add(*k, u32::from(*k) << 16 | u32::from(*v));
            *counts.entry(*k).or_default() += 1;
        }
        for (k, count) in counts {
            for _ in 0..count {
                let v = consumer.try_remove_key(&k).expect("supply matches demand");
                prop_assert_eq!((v >> 16) as u8, k, "value belongs to its key");
            }
        }
        prop_assert_eq!(pool.total_len(), 0);
    }

    /// Statistics identities hold for arbitrary keyed usage.
    #[test]
    fn keyed_stats_identities(ops in script()) {
        let pool: KeyedPool<u8, u16> = KeyedPool::new(4);
        {
            let mut h = pool.register();
            let mut live = 0usize;
            for op in &ops {
                match op {
                    Op::Add(k, v) => {
                        h.add(*k, *v);
                        live += 1;
                    }
                    // Guard: empty-pool removes abort (lone process).
                    Op::RemoveAny if live > 0 => {
                        let _ = h.try_remove_any().expect("non-empty");
                        live -= 1;
                    }
                    _ => {
                        // Keyed removes may or may not find their key; both
                        // outcomes are exercised by the multimap test above.
                    }
                }
            }
        }
        let m = pool.stats().merged();
        prop_assert_eq!(m.ops(), m.adds + m.removes + m.aborted_removes);
        prop_assert!(m.elements_stolen >= m.steals);
        prop_assert!(m.removes + pool.total_len() as u64 == m.adds,
            "adds = removes + residue");
    }
}
