//! Property-based tests of the unified operations API ([`cpool::PoolOps`]):
//! arbitrary interleavings of batch and single operations preserve the
//! element multiset on both pool frontends.

use std::collections::BTreeMap;

use proptest::prelude::*;

use cpool::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Add(u16),
    AddBatch(Vec<u16>),
    Remove,
    RemoveBatch(usize),
    Drain,
}

fn script() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u16..500).prop_map(Op::Add),
            prop::collection::vec(0u16..500, 0..12).prop_map(Op::AddBatch),
            Just(Op::Remove),
            (0usize..10).prop_map(Op::RemoveBatch),
            Just(Op::Drain),
        ],
        0..200,
    )
}

/// A multiset model: counts per value.
#[derive(Default)]
struct Model {
    counts: BTreeMap<u16, usize>,
    len: usize,
}

impl Model {
    fn insert(&mut self, v: u16) {
        *self.counts.entry(v).or_default() += 1;
        self.len += 1;
    }

    fn take(&mut self, v: u16) -> bool {
        match self.counts.get_mut(&v) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    self.counts.remove(&v);
                }
                self.len -= 1;
                true
            }
            _ => false,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Plain pool, single process: any interleaving of `add`/`add_batch`/
    /// `try_remove`/`try_remove_batch`/`drain` behaves exactly like a
    /// multiset, and the per-process statistics count one add/remove per
    /// element whatever the batching.
    #[test]
    fn batch_and_single_ops_preserve_the_multiset(
        kind in prop_oneof![
            Just(PolicyKind::Linear), Just(PolicyKind::Random), Just(PolicyKind::Tree)
        ],
        ops in script(),
        segs in 1usize..6,
    ) {
        let pool: Pool<VecSegment<u16>, DynPolicy> =
            PoolBuilder::new(segs).seed(5).build_policy(kind);
        let mut h = pool.register();
        let mut model = Model::default();

        for op in &ops {
            match op {
                Op::Add(v) => {
                    h.add(*v);
                    model.insert(*v);
                }
                Op::AddBatch(vs) => {
                    h.add_batch(vs.iter().copied());
                    for v in vs {
                        model.insert(*v);
                    }
                }
                Op::Remove => match h.try_remove() {
                    Ok(v) => prop_assert!(model.take(v), "pool invented value {v}"),
                    Err(err) => {
                        prop_assert_eq!(err, RemoveError::Aborted);
                        prop_assert_eq!(model.len, 0);
                    }
                },
                Op::RemoveBatch(n) => {
                    let got = h.try_remove_batch(*n);
                    prop_assert!(got.len() <= *n, "batch overshot the request");
                    // A lone process only comes back empty-handed when the
                    // pool itself is empty (its search aborts terminally).
                    if got.is_empty() && *n > 0 {
                        prop_assert_eq!(model.len, 0);
                    }
                    for v in got {
                        prop_assert!(model.take(v), "batch invented value {v}");
                    }
                }
                Op::Drain => {
                    let got = h.drain();
                    prop_assert_eq!(got.len(), model.len, "drain missed elements");
                    for v in got {
                        prop_assert!(model.take(v), "drain invented value {v}");
                    }
                    prop_assert_eq!(model.len, 0);
                }
            }
            prop_assert_eq!(pool.total_len(), model.len);
        }

        // Per-element accounting holds whatever mix of batched and single
        // operations ran: adds - removes == residue.
        let stats = h.stats();
        prop_assert_eq!(stats.adds - stats.removes, model.len as u64);
    }

    /// Keyed pool: the same interleavings over `(key, value)` pairs behave
    /// like a multimap. Batch ops go through the `PoolOps` vocabulary.
    #[test]
    fn keyed_batch_and_single_ops_preserve_the_multimap(
        ops in script(),
        segs in 1usize..5,
    ) {
        let pool: KeyedPool<u8, u16> = KeyedPool::new(segs);
        let mut h = pool.register();
        // Model counts per (key, value) pair; keys derive from the value so
        // scripts cover several buckets.
        let mut model: BTreeMap<(u8, u16), usize> = BTreeMap::new();
        let mut model_len = 0usize;
        let key_of = |v: u16| (v % 3) as u8;

        for op in &ops {
            match op {
                Op::Add(v) => {
                    h.add(key_of(*v), *v);
                    *model.entry((key_of(*v), *v)).or_default() += 1;
                    model_len += 1;
                }
                Op::AddBatch(vs) => {
                    h.add_batch(vs.iter().map(|&v| (key_of(v), v)));
                    for &v in vs {
                        *model.entry((key_of(v), v)).or_default() += 1;
                        model_len += 1;
                    }
                }
                Op::Remove => match h.try_remove_any() {
                    Ok((k, v)) => {
                        prop_assert_eq!(k, key_of(v), "value under the wrong key");
                        let c = model.get_mut(&(k, v)).expect("pool invented a pair");
                        *c -= 1;
                        if *c == 0 {
                            model.remove(&(k, v));
                        }
                        model_len -= 1;
                    }
                    Err(err) => {
                        prop_assert_eq!(err, RemoveError::Aborted);
                        prop_assert_eq!(model_len, 0);
                    }
                },
                Op::RemoveBatch(n) => {
                    let got = h.try_remove_batch(*n);
                    prop_assert!(got.len() <= *n);
                    if got.is_empty() && *n > 0 {
                        prop_assert_eq!(model_len, 0);
                    }
                    for (k, v) in got {
                        prop_assert_eq!(k, key_of(v), "value under the wrong key");
                        let c = model.get_mut(&(k, v)).expect("batch invented a pair");
                        *c -= 1;
                        if *c == 0 {
                            model.remove(&(k, v));
                        }
                        model_len -= 1;
                    }
                }
                Op::Drain => {
                    let got = h.drain();
                    prop_assert_eq!(got.len(), model_len, "drain missed pairs");
                    for (k, v) in got {
                        let c = model.get_mut(&(k, v)).expect("drain invented a pair");
                        *c -= 1;
                        if *c == 0 {
                            model.remove(&(k, v));
                        }
                        model_len -= 1;
                    }
                    prop_assert_eq!(model_len, 0);
                }
            }
            prop_assert_eq!(pool.total_len(), model_len);
        }

        let stats = h.stats();
        prop_assert_eq!(stats.adds - stats.removes, model_len as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Magazine-enabled plain pool: elements split across three tiers —
    /// segments (`total_len`), the shared depot, and this handle's own
    /// two-magazine cache — and every interleaving of single/batch ops
    /// conserves the multiset across all of them. Flush (magazine →
    /// depot/segment) and refill (depot → magazine) must never lose or
    /// invent an element.
    #[test]
    fn magazine_flush_refill_preserves_the_multiset(
        kind in prop_oneof![
            Just(PolicyKind::Linear), Just(PolicyKind::Random), Just(PolicyKind::Tree)
        ],
        ops in script(),
        segs in 1usize..5,
        depth in 1usize..9,
    ) {
        let pool: Pool<VecSegment<u16>, DynPolicy> =
            PoolBuilder::new(segs).seed(7).handle_cache(depth).build_policy(kind);
        let mut h = pool.register();
        let mut model = Model::default();

        for op in &ops {
            match op {
                Op::Add(v) => {
                    h.add(*v);
                    model.insert(*v);
                }
                Op::AddBatch(vs) => {
                    h.add_batch(vs.iter().copied());
                    for v in vs {
                        model.insert(*v);
                    }
                }
                Op::Remove => match h.try_remove() {
                    Ok(v) => prop_assert!(model.take(v), "pool invented value {v}"),
                    Err(err) => {
                        prop_assert_eq!(err, RemoveError::Aborted);
                        prop_assert_eq!(model.len, 0);
                    }
                },
                Op::RemoveBatch(n) => {
                    let got = h.try_remove_batch(*n);
                    prop_assert!(got.len() <= *n, "batch overshot the request");
                    // The lone process reaches every tier: its own cache
                    // (magazine pop), the depot (raid), and the segments.
                    if got.is_empty() && *n > 0 {
                        prop_assert_eq!(model.len, 0);
                    }
                    for v in got {
                        prop_assert!(model.take(v), "batch invented value {v}");
                    }
                }
                Op::Drain => {
                    let got = h.drain();
                    prop_assert_eq!(got.len(), model.len, "drain missed a tier");
                    for v in got {
                        prop_assert!(model.take(v), "drain invented value {v}");
                    }
                    prop_assert_eq!(model.len, 0);
                }
            }
            // The conservation law: nothing hides outside the three tiers.
            prop_assert_eq!(
                pool.total_len() + pool.depot_len() + h.cached_len(),
                model.len,
                "segments + depot + handle cache must equal the model"
            );
        }

        // Cached ops count like visible ones: adds - removes == residue.
        let stats = h.stats();
        prop_assert_eq!(stats.adds - stats.removes, model.len as u64);
    }

    /// The keyed twin: mixed-key magazines over `(key, value)` pairs. The
    /// per-key remove must also find pairs that live only in this handle's
    /// cache or the depot (take_matching / keyed raid paths).
    #[test]
    fn keyed_magazine_flush_refill_preserves_the_multimap(
        ops in script(),
        segs in 1usize..4,
        depth in 1usize..9,
    ) {
        let pool: KeyedPool<u8, u16> =
            KeyedPoolBuilder::new(segs).handle_cache(depth).build();
        let mut h = pool.register();
        let mut model: BTreeMap<(u8, u16), usize> = BTreeMap::new();
        let mut model_len = 0usize;
        let key_of = |v: u16| (v % 3) as u8;

        for op in &ops {
            match op {
                Op::Add(v) => {
                    h.add(key_of(*v), *v);
                    *model.entry((key_of(*v), *v)).or_default() += 1;
                    model_len += 1;
                }
                Op::AddBatch(vs) => {
                    h.add_batch(vs.iter().map(|&v| (key_of(v), v)));
                    for &v in vs {
                        *model.entry((key_of(v), v)).or_default() += 1;
                        model_len += 1;
                    }
                }
                // Alternate the remove flavor so the keyed paths (magazine
                // scan + keyed depot raid) get traffic too: remove by the
                // key of some pair the model still holds.
                Op::Remove => match model.keys().next().copied() {
                    Some((k, _)) => {
                        let v = h.try_remove_key(&k).expect("key observed non-empty");
                        prop_assert_eq!(key_of(v), k, "value under the wrong key");
                        prop_assert!(
                            model_take(&mut model, &mut model_len, k, v),
                            "pool invented a pair"
                        );
                    }
                    None => match h.try_remove_any() {
                        Ok(_) => prop_assert!(false, "remove on empty pool succeeded"),
                        Err(err) => prop_assert_eq!(err, RemoveError::Aborted),
                    },
                },
                Op::RemoveBatch(n) => {
                    let got = h.try_remove_batch(*n);
                    prop_assert!(got.len() <= *n);
                    if got.is_empty() && *n > 0 {
                        prop_assert_eq!(model_len, 0);
                    }
                    for (k, v) in got {
                        prop_assert_eq!(k, key_of(v), "value under the wrong key");
                        prop_assert!(
                            model_take(&mut model, &mut model_len, k, v),
                            "batch invented a pair"
                        );
                    }
                }
                Op::Drain => {
                    let got = h.drain();
                    prop_assert_eq!(got.len(), model_len, "drain missed a tier");
                    for (k, v) in got {
                        prop_assert!(
                            model_take(&mut model, &mut model_len, k, v),
                            "drain invented a pair"
                        );
                    }
                    prop_assert_eq!(model_len, 0);
                }
            }
            prop_assert_eq!(
                pool.total_len() + pool.depot_len() + h.cached_len(),
                model_len,
                "segments + depot + handle cache must equal the model"
            );
        }

        let stats = h.stats();
        prop_assert_eq!(stats.adds - stats.removes, model_len as u64);
    }
}

/// Script alphabet for the hot-key properties: the multimap ops plus
/// explicit bucket splits/merges and a second handle whose keyed removes
/// exercise the steal paths (its home is another segment).
#[derive(Clone, Debug)]
enum HotOp {
    Add(u16),
    AddBatch(Vec<u16>),
    RemoveAny,
    RemoveKey(u8),
    StealKey(u8),
    Promote(u8),
    Demote(u8),
    Drain,
}

fn hot_script() -> impl Strategy<Value = Vec<HotOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u16..500).prop_map(HotOp::Add),
            prop::collection::vec(0u16..500, 0..12).prop_map(HotOp::AddBatch),
            Just(HotOp::RemoveAny),
            (0u8..4).prop_map(HotOp::RemoveKey),
            (0u8..4).prop_map(HotOp::StealKey),
            (0u8..4).prop_map(HotOp::Promote),
            (0u8..4).prop_map(HotOp::Demote),
            Just(HotOp::Drain),
        ],
        0..200,
    )
}

/// Pops one `(key, value)` pair out of the model, failing if the pool
/// invented it.
fn model_take(
    model: &mut BTreeMap<(u8, u16), usize>,
    model_len: &mut usize,
    k: u8,
    v: u16,
) -> bool {
    match model.get_mut(&(k, v)) {
        Some(c) if *c > 0 => {
            *c -= 1;
            if *c == 0 {
                model.remove(&(k, v));
            }
            *model_len -= 1;
            true
        }
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Keyed pool with hot-key machinery driven *explicitly*: arbitrary
    /// interleavings of bucket splits and merges with adds, keyed and
    /// any-key removes, cross-segment steals, batches, and drains preserve
    /// the per-key multiset exactly.
    #[test]
    fn split_and_demote_preserve_the_per_key_multiset(
        ops in hot_script(),
        segs in 2usize..5,
    ) {
        let pool: KeyedPool<u8, u16> = KeyedPool::new(segs);
        let mut h = pool.register(); // home 0
        let mut thief = pool.register(); // home 1: its keyed removes steal
        let mut model: BTreeMap<(u8, u16), usize> = BTreeMap::new();
        let mut model_len = 0usize;
        let key_of = |v: u16| (v % 4) as u8;

        for op in &ops {
            match op {
                HotOp::Add(v) => {
                    h.add(key_of(*v), *v);
                    *model.entry((key_of(*v), *v)).or_default() += 1;
                    model_len += 1;
                }
                HotOp::AddBatch(vs) => {
                    h.add_batch(vs.iter().map(|&v| (key_of(v), v)));
                    for &v in vs {
                        *model.entry((key_of(v), v)).or_default() += 1;
                        model_len += 1;
                    }
                }
                // Removes run only when they can succeed: with a second
                // registered (idle) handle the §3.2 gate never fires, so a
                // fruitless try_remove would search forever by design.
                HotOp::RemoveAny => {
                    if model_len == 0 {
                        continue;
                    }
                    let (k, v) = h.try_remove_any().expect("elements exist");
                    prop_assert_eq!(k, key_of(v), "value under the wrong key");
                    prop_assert!(
                        model_take(&mut model, &mut model_len, k, v),
                        "pool invented a pair"
                    );
                }
                HotOp::RemoveKey(k) | HotOp::StealKey(k) => {
                    if !model.keys().any(|(mk, _)| mk == k) {
                        continue;
                    }
                    let hand = if matches!(op, HotOp::StealKey(_)) { &mut thief } else { &mut h };
                    let v = hand.try_remove_key(k).expect("key observed non-empty");
                    prop_assert_eq!(key_of(v), *k, "value under the wrong key");
                    prop_assert!(
                        model_take(&mut model, &mut model_len, *k, v),
                        "pool invented a pair"
                    );
                }
                HotOp::Promote(k) => pool.promote_key(k),
                HotOp::Demote(k) => pool.demote_key(k),
                HotOp::Drain => {
                    let got = h.drain();
                    prop_assert_eq!(got.len(), model_len, "drain missed pairs");
                    for (k, v) in got {
                        prop_assert!(
                            model_take(&mut model, &mut model_len, k, v),
                            "drain invented a pair"
                        );
                    }
                    prop_assert_eq!(model_len, 0);
                }
            }
            prop_assert_eq!(pool.total_len(), model_len);
        }
    }

    /// The same conservation with splits driven by the *sampling detector*
    /// (aggressive knobs, skewed keys): promotions and demotions fire on
    /// their own and must never lose or invent elements.
    #[test]
    fn sampled_promotion_preserves_the_per_key_multiset(
        ops in hot_script(),
        segs in 1usize..4,
    ) {
        let pool: KeyedPool<u8, u16> = KeyedPoolBuilder::new(segs)
            .hot_keys(HotKeyConfig {
                sample_every: 1,
                window: 16,
                sub_shards: 3,
                promote_pct: 40,
                demote_pct: 10,
            })
            .build();
        let mut h = pool.register();
        let mut h2 = pool.register();
        let mut model: BTreeMap<(u8, u16), usize> = BTreeMap::new();
        let mut model_len = 0usize;
        // Skew: most values land on key 0, so the detector promotes it.
        let key_of = |v: u16| if v < 350 { 0u8 } else { (v % 4) as u8 };

        for op in &ops {
            match op {
                HotOp::Add(v) => {
                    h.add(key_of(*v), *v);
                    *model.entry((key_of(*v), *v)).or_default() += 1;
                    model_len += 1;
                }
                HotOp::AddBatch(vs) => {
                    h.add_batch(vs.iter().map(|&v| (key_of(v), v)));
                    for &v in vs {
                        *model.entry((key_of(v), v)).or_default() += 1;
                        model_len += 1;
                    }
                }
                // Same guard as above: removes only when satisfiable.
                HotOp::RemoveAny => {
                    if model_len == 0 {
                        continue;
                    }
                    let (k, v) = h.try_remove_any().expect("elements exist");
                    prop_assert_eq!(k, key_of(v));
                    prop_assert!(model_take(&mut model, &mut model_len, k, v));
                }
                HotOp::RemoveKey(k) | HotOp::StealKey(k) => {
                    if !model.keys().any(|(mk, _)| mk == k) {
                        continue;
                    }
                    let hand = if matches!(op, HotOp::StealKey(_)) { &mut h2 } else { &mut h };
                    let v = hand.try_remove_key(k).expect("key observed non-empty");
                    prop_assert_eq!(key_of(v), *k);
                    prop_assert!(model_take(&mut model, &mut model_len, *k, v));
                }
                // The detector owns splits here; manual ops still allowed.
                HotOp::Promote(k) => pool.promote_key(k),
                HotOp::Demote(k) => pool.demote_key(k),
                HotOp::Drain => {
                    let got = h.drain();
                    prop_assert_eq!(got.len(), model_len);
                    for (k, v) in got {
                        prop_assert!(model_take(&mut model, &mut model_len, k, v));
                    }
                }
            }
            prop_assert_eq!(pool.total_len(), model_len);
        }

        let stats = pool.stats();
        let _ = stats.pool.hotkey_promotions; // sampled splits may or may not fire per script
    }
}
