//! Property-based tests of the unified operations API ([`cpool::PoolOps`]):
//! arbitrary interleavings of batch and single operations preserve the
//! element multiset on both pool frontends.

use std::collections::BTreeMap;

use proptest::prelude::*;

use cpool::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Add(u16),
    AddBatch(Vec<u16>),
    Remove,
    RemoveBatch(usize),
    Drain,
}

fn script() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u16..500).prop_map(Op::Add),
            prop::collection::vec(0u16..500, 0..12).prop_map(Op::AddBatch),
            Just(Op::Remove),
            (0usize..10).prop_map(Op::RemoveBatch),
            Just(Op::Drain),
        ],
        0..200,
    )
}

/// A multiset model: counts per value.
#[derive(Default)]
struct Model {
    counts: BTreeMap<u16, usize>,
    len: usize,
}

impl Model {
    fn insert(&mut self, v: u16) {
        *self.counts.entry(v).or_default() += 1;
        self.len += 1;
    }

    fn take(&mut self, v: u16) -> bool {
        match self.counts.get_mut(&v) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    self.counts.remove(&v);
                }
                self.len -= 1;
                true
            }
            _ => false,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Plain pool, single process: any interleaving of `add`/`add_batch`/
    /// `try_remove`/`try_remove_batch`/`drain` behaves exactly like a
    /// multiset, and the per-process statistics count one add/remove per
    /// element whatever the batching.
    #[test]
    fn batch_and_single_ops_preserve_the_multiset(
        kind in prop_oneof![
            Just(PolicyKind::Linear), Just(PolicyKind::Random), Just(PolicyKind::Tree)
        ],
        ops in script(),
        segs in 1usize..6,
    ) {
        let pool: Pool<VecSegment<u16>, DynPolicy> =
            PoolBuilder::new(segs).seed(5).build_policy(kind);
        let mut h = pool.register();
        let mut model = Model::default();

        for op in &ops {
            match op {
                Op::Add(v) => {
                    h.add(*v);
                    model.insert(*v);
                }
                Op::AddBatch(vs) => {
                    h.add_batch(vs.iter().copied());
                    for v in vs {
                        model.insert(*v);
                    }
                }
                Op::Remove => match h.try_remove() {
                    Ok(v) => prop_assert!(model.take(v), "pool invented value {v}"),
                    Err(err) => {
                        prop_assert_eq!(err, RemoveError::Aborted);
                        prop_assert_eq!(model.len, 0);
                    }
                },
                Op::RemoveBatch(n) => {
                    let got = h.try_remove_batch(*n);
                    prop_assert!(got.len() <= *n, "batch overshot the request");
                    // A lone process only comes back empty-handed when the
                    // pool itself is empty (its search aborts terminally).
                    if got.is_empty() && *n > 0 {
                        prop_assert_eq!(model.len, 0);
                    }
                    for v in got {
                        prop_assert!(model.take(v), "batch invented value {v}");
                    }
                }
                Op::Drain => {
                    let got = h.drain();
                    prop_assert_eq!(got.len(), model.len, "drain missed elements");
                    for v in got {
                        prop_assert!(model.take(v), "drain invented value {v}");
                    }
                    prop_assert_eq!(model.len, 0);
                }
            }
            prop_assert_eq!(pool.total_len(), model.len);
        }

        // Per-element accounting holds whatever mix of batched and single
        // operations ran: adds - removes == residue.
        let stats = h.stats();
        prop_assert_eq!(stats.adds - stats.removes, model.len as u64);
    }

    /// Keyed pool: the same interleavings over `(key, value)` pairs behave
    /// like a multimap. Batch ops go through the `PoolOps` vocabulary.
    #[test]
    fn keyed_batch_and_single_ops_preserve_the_multimap(
        ops in script(),
        segs in 1usize..5,
    ) {
        let pool: KeyedPool<u8, u16> = KeyedPool::new(segs);
        let mut h = pool.register();
        // Model counts per (key, value) pair; keys derive from the value so
        // scripts cover several buckets.
        let mut model: BTreeMap<(u8, u16), usize> = BTreeMap::new();
        let mut model_len = 0usize;
        let key_of = |v: u16| (v % 3) as u8;

        for op in &ops {
            match op {
                Op::Add(v) => {
                    h.add(key_of(*v), *v);
                    *model.entry((key_of(*v), *v)).or_default() += 1;
                    model_len += 1;
                }
                Op::AddBatch(vs) => {
                    h.add_batch(vs.iter().map(|&v| (key_of(v), v)));
                    for &v in vs {
                        *model.entry((key_of(v), v)).or_default() += 1;
                        model_len += 1;
                    }
                }
                Op::Remove => match h.try_remove_any() {
                    Ok((k, v)) => {
                        prop_assert_eq!(k, key_of(v), "value under the wrong key");
                        let c = model.get_mut(&(k, v)).expect("pool invented a pair");
                        *c -= 1;
                        if *c == 0 {
                            model.remove(&(k, v));
                        }
                        model_len -= 1;
                    }
                    Err(err) => {
                        prop_assert_eq!(err, RemoveError::Aborted);
                        prop_assert_eq!(model_len, 0);
                    }
                },
                Op::RemoveBatch(n) => {
                    let got = h.try_remove_batch(*n);
                    prop_assert!(got.len() <= *n);
                    if got.is_empty() && *n > 0 {
                        prop_assert_eq!(model_len, 0);
                    }
                    for (k, v) in got {
                        prop_assert_eq!(k, key_of(v), "value under the wrong key");
                        let c = model.get_mut(&(k, v)).expect("batch invented a pair");
                        *c -= 1;
                        if *c == 0 {
                            model.remove(&(k, v));
                        }
                        model_len -= 1;
                    }
                }
                Op::Drain => {
                    let got = h.drain();
                    prop_assert_eq!(got.len(), model_len, "drain missed pairs");
                    for (k, v) in got {
                        let c = model.get_mut(&(k, v)).expect("drain invented a pair");
                        *c -= 1;
                        if *c == 0 {
                            model.remove(&(k, v));
                        }
                        model_len -= 1;
                    }
                    prop_assert_eq!(model_len, 0);
                }
            }
            prop_assert_eq!(pool.total_len(), model_len);
        }

        let stats = h.stats();
        prop_assert_eq!(stats.adds - stats.removes, model_len as u64);
    }
}
