//! Lifecycle tests for the handle-local magazine layer
//! ([`cpool::magazine`]): cached elements must never be stranded. Blocked
//! and async removers see cached residue (not [`RemoveError::Closed`])
//! after `close()`, producers flush when consumers wait, drop and drain
//! return cached elements to the pool, and the depot exchange cycle moves
//! whole magazines between handles.

use std::thread;
use std::time::Duration;

use cpool::future::exec::block_on;
use cpool::prelude::*;

type MagPool = Pool<VecSegment<u64>, LinearSearch>;

fn magazine_pool(segments: usize, depth: usize) -> MagPool {
    PoolBuilder::new(segments).seed(3).handle_cache(depth).build()
}

/// `close()` on a handle flushes its magazines pool-visibly first, so a
/// consumer parked in a `Block` remove drains the cached residue and only
/// then observes `Closed` — never a lost element.
#[test]
fn close_delivers_cached_residue_to_parked_remover() {
    let pool = magazine_pool(1, 8);
    let mut producer = pool.register();
    for v in [10, 11, 12] {
        producer.add(v);
    }
    assert_eq!(pool.total_len(), 0, "all three adds were cached");
    assert_eq!(producer.cached_len(), 3);

    thread::scope(|s| {
        let consumer = s.spawn(|| {
            let mut h = pool.register();
            let mut got = Vec::new();
            loop {
                match h.remove(WaitStrategy::Block) {
                    Ok(v) => got.push(v),
                    Err(RemoveError::Closed) => return got,
                    Err(err) => panic!("unexpected error: {err:?}"),
                }
            }
        });
        // Let the consumer park on the (visibly empty) pool, then close:
        // the close-side flush publishes the residue and wakes it.
        thread::sleep(Duration::from_millis(50));
        producer.close();
        let mut got = consumer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![10, 11, 12], "residue drained before Closed");
    });
}

/// The async twin: a pending `remove_async` future resolves with the
/// cached residue once `close()` flushes it, not with `Closed`.
#[test]
fn close_delivers_cached_residue_to_async_remover() {
    let pool = magazine_pool(1, 8);
    let mut producer = pool.register();
    producer.add(77);
    assert_eq!(pool.total_len(), 0, "the add was cached");

    let fut = producer.remove_async();
    thread::scope(|s| {
        let waiter = s.spawn(move || block_on(fut));
        thread::sleep(Duration::from_millis(50));
        producer.close();
        assert_eq!(waiter.join().unwrap(), Ok(77), "residue before Closed");
        assert_eq!(block_on(producer.remove_async()), Err(RemoveError::Closed));
    });
}

/// A producer whose magazine holds elements flushes them the moment it
/// observes a waiting consumer — the waiter-present check on the notifier
/// — and counts the event in `flush_on_wait`.
#[test]
fn producer_flushes_when_a_remover_waits() {
    let pool = magazine_pool(1, 8);
    let mut producer = pool.register();
    for v in 0..4 {
        producer.add(v);
    }
    assert_eq!(producer.cached_len(), 4);
    assert_eq!(pool.total_len(), 0);

    thread::scope(|s| {
        let consumer = s.spawn(|| {
            let mut h = pool.register();
            (0..5).map(|_| h.remove(WaitStrategy::Block).unwrap()).collect::<Vec<_>>()
        });
        // Give the consumer time to park, then add: the producer sees the
        // waiter, publishes its whole cache, and the add goes in visibly.
        thread::sleep(Duration::from_millis(100));
        producer.add(99);
        let mut got = consumer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 99]);
    });
    assert_eq!(producer.stats().flush_on_wait, 1, "one flush served the waiter");
    assert_eq!(producer.cached_len(), 0);
}

/// Dropping a handle returns its cached elements to the pool: the
/// magazine layer must never leak elements with a retiring handle.
#[test]
fn drop_flushes_the_magazine() {
    let pool = magazine_pool(2, 8);
    let mut h = pool.register();
    for v in [1, 2, 3] {
        h.add(v);
    }
    assert_eq!(pool.total_len(), 0, "cached, invisible");
    drop(h);
    assert_eq!(pool.total_len(), 3, "drop flushed the cache");
    let mut h2 = pool.register();
    let mut got: Vec<u64> = (0..3).map(|_| h2.try_remove().unwrap()).collect();
    got.sort_unstable();
    assert_eq!(got, vec![1, 2, 3]);
}

/// `drain()` sweeps all three tiers: this handle's own magazines, every
/// full magazine in the shared depot, and the segments.
#[test]
fn drain_sweeps_own_magazine_and_depot() {
    let pool = magazine_pool(2, 2);
    let mut h = pool.register();
    // Depth 2 fills both magazines after 4 adds; the rest cycle through
    // the depot, so elements land in every tier.
    for v in 0..10 {
        h.add(v);
    }
    assert!(h.stats().depot_exchanges >= 1, "depth 2 must overflow to the depot");
    assert!(pool.depot_len() > 0, "full magazines parked in the depot");
    let mut got: Vec<u64> = h.drain().collect();
    got.sort_unstable();
    assert_eq!(got, (0..10).collect::<Vec<_>>(), "no tier escaped the drain");
    assert_eq!(pool.depot_len(), 0);
    assert_eq!(h.cached_len(), 0);
    assert!(h.is_drained());
}

/// The depot exchange cycle between handles: one handle's overflow parks
/// full magazines in the depot; another handle's first remove installs one
/// as its loaded magazine (a refill) and then serves pure hits from it.
#[test]
fn depot_exchange_refills_another_handle() {
    let pool = magazine_pool(1, 2);
    let mut producer = pool.register();
    for v in 0..10 {
        producer.add(v);
    }
    assert!(pool.depot_len() > 0);

    let mut consumer = pool.register();
    let first = consumer.try_remove().expect("depot magazine must be reachable");
    assert!(first < 10);
    assert_eq!(consumer.stats().depot_exchanges, 1, "the first pop refilled");
    let second = consumer.try_remove().expect("now a pure magazine hit");
    assert!(second < 10);
    assert_eq!(consumer.stats().magazine_hits, 2, "refill and hit both count");
}

/// `is_drained` counts this handle's own cache: a pool whose only element
/// lives in the caller's magazine is *not* drained from its perspective.
#[test]
fn is_drained_sees_own_cache() {
    let pool = magazine_pool(1, 4);
    let mut h = pool.register();
    h.add(5);
    assert_eq!(pool.total_len(), 0);
    assert!(!h.is_drained(), "own cached element keeps the pool non-drained");
    assert_eq!(h.try_remove(), Ok(5));
    assert!(h.is_drained());
}

/// Retired handles deposit their magazine counters in the registry: the
/// pool-wide merged statistics see hits, exchanges, and flushes.
#[test]
fn registry_merges_magazine_counters() {
    let pool = magazine_pool(1, 2);
    let mut producer = pool.register();
    for v in 0..10 {
        producer.add(v);
    }
    let mut consumer = pool.register();
    for _ in 0..4 {
        consumer.try_remove().unwrap();
    }
    drop(producer);
    drop(consumer);
    let merged = pool.stats().merged();
    assert!(merged.magazine_hits > 0, "cached ops must be accounted");
    assert!(merged.depot_exchanges > 0, "depot traffic must be accounted");
}

// ---------------------------------------------------------------------------
// Keyed twins: the same lifecycle guarantees over mixed-key magazines.
// ---------------------------------------------------------------------------

/// Keyed `close()` flushes the closing handle's mixed-key magazines so a
/// parked any-key remover drains the residue before `Closed`.
#[test]
fn keyed_close_delivers_cached_residue() {
    let pool: KeyedPool<u8, u64> = KeyedPoolBuilder::new(1).handle_cache(8).build();
    let mut producer = pool.register();
    producer.add(1, 10);
    producer.add(2, 20);
    assert_eq!(pool.total_len(), 0, "both pairs cached");

    thread::scope(|s| {
        let consumer = s.spawn(|| {
            let mut h = pool.register();
            let mut got = Vec::new();
            loop {
                match h.remove(WaitStrategy::Block) {
                    Ok(pair) => got.push(pair),
                    Err(RemoveError::Closed) => return got,
                    Err(err) => panic!("unexpected error: {err:?}"),
                }
            }
        });
        thread::sleep(Duration::from_millis(50));
        producer.close();
        let mut got = consumer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![(1, 10), (2, 20)], "residue drained before Closed");
    });
}

/// A keyed remove finds a pair that lives only in the caller's own
/// magazine (the `take_matching` scan): without it, removing a key that
/// only this handle cached would hang forever.
#[test]
fn keyed_remove_serves_own_cached_key() {
    let pool: KeyedPool<u8, u64> = KeyedPoolBuilder::new(1).handle_cache(4).build();
    let mut h = pool.register();
    h.add(3, 30);
    assert_eq!(pool.total_len(), 0, "the pair is cached");
    assert_eq!(h.try_remove_key(&3), Ok(30), "served from the magazine scan");
    assert_eq!(h.stats().magazine_hits, 2, "cached add + cached keyed remove");
}

/// Keyed `drain()` sweeps own magazines, the mixed-key depot, and the
/// segments — the keyed twin of `drain_sweeps_own_magazine_and_depot`.
#[test]
fn keyed_drain_sweeps_own_magazine_and_depot() {
    let pool: KeyedPool<u8, u64> = KeyedPoolBuilder::new(2).handle_cache(2).build();
    let mut h = pool.register();
    for v in 0..10u64 {
        h.add((v % 3) as u8, v);
    }
    assert!(pool.depot_len() > 0, "depth 2 must overflow to the depot");
    let mut got: Vec<u64> = h.drain().map(|(_, v)| v).collect();
    got.sort_unstable();
    assert_eq!(got, (0..10).collect::<Vec<_>>(), "no tier escaped the drain");
    assert_eq!(pool.depot_len(), 0);
    assert!(h.is_drained());
}

/// Dropping a keyed handle flushes its mixed-key cache back to the pool.
#[test]
fn keyed_drop_flushes_the_magazine() {
    let pool: KeyedPool<u8, u64> = KeyedPoolBuilder::new(1).handle_cache(8).build();
    let mut h = pool.register();
    h.add(1, 100);
    h.add(2, 200);
    assert_eq!(pool.total_len(), 0);
    drop(h);
    assert_eq!(pool.total_len(), 2, "drop flushed the pairs");
    let mut h2 = pool.register();
    assert_eq!(h2.try_remove_key(&1), Ok(100));
    assert_eq!(h2.try_remove_key(&2), Ok(200));
}
