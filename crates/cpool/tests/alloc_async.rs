//! The async layer's steady-state guarantee: **register / wake /
//! re-register cycles perform zero heap allocations** — at the notifier,
//! at a single polled future, and across a fleet's wake→re-poll dispatch.
//!
//! Waker-list shells recycle through the notifier's free list (a
//! `notify_all` swaps the registered wakers into a recycled vector and
//! returns it after delivery), future construction is plain owned data
//! (`ProcStats` histograms are fixed arrays, the linear policy state is
//! `Copy`), and the fleet driver reuses its ready-queue and scratch
//! buffers — so once warmed, an async consumer adds no allocator traffic
//! to the steal path's own zero-allocation guarantee
//! (`tests/alloc_steal.rs`, whose counting-allocator scheme this file
//! replicates: a process-wide `#[global_allocator]` in a dedicated test
//! binary, counting scoped to the armed measuring thread).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use cpool::prelude::*;

/// Counts allocator hits (alloc + realloc) from the armed thread.
struct CountingAlloc;

static HITS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    // `const` init: reading this inside the allocator performs no lazy
    // initialization and therefore cannot itself allocate or recurse.
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

fn armed() -> bool {
    ARMED.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            HITS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if armed() {
            HITS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            HITS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `op` with this thread's counter armed and returns the number of
/// allocator hits it caused.
fn count_allocs(op: impl FnOnce()) -> usize {
    HITS.store(0, Ordering::SeqCst);
    ARMED.with(|armed| armed.set(true));
    op();
    ARMED.with(|armed| armed.set(false));
    HITS.load(Ordering::SeqCst)
}

const WARMUP_ROUNDS: usize = 50;
const MEASURED_ROUNDS: usize = 50;

/// A waker that does nothing on wake: the tests below poll by hand, so
/// delivery is observed through the poll results, not the waker.
struct NopWake;

impl Wake for NopWake {
    fn wake(self: Arc<Self>) {}
}

/// The notifier primitive alone: register a block of wakers, cancel a few
/// (the swap-remove withdrawal path), signal the rest. Past warmup the
/// waker list and the recycled delivery shell both hold their capacity,
/// so the whole cycle is pointer traffic.
#[test]
fn notifier_register_wake_reregister_allocates_nothing() {
    const WAITERS: usize = 64;
    let notifier = Notifier::default();
    let waker = Waker::from(Arc::new(NopWake));
    let round = |notifier: &Notifier| {
        let mut cancel = [0u64; 8];
        for i in 0..WAITERS {
            let ticket = notifier.register_waker(&waker);
            if i < cancel.len() {
                cancel[i] = ticket;
            }
        }
        for ticket in cancel {
            assert!(notifier.cancel_waker(ticket), "not yet drained");
        }
        notifier.notify_all();
    };
    for _ in 0..WARMUP_ROUNDS {
        round(&notifier);
    }
    let hits = count_allocs(|| {
        for _ in 0..MEASURED_ROUNDS {
            round(&notifier);
        }
    });
    assert_eq!(
        hits, 0,
        "steady-state register/cancel/notify cycle must not allocate \
         ({MEASURED_ROUNDS} rounds of {WAITERS} wakers)"
    );
}

/// A full pool future's lifecycle — create, poll to pending (waker armed
/// at the lap boundary), producer adds, re-poll to `Ok` through the steal
/// path — allocates nothing per cycle: the future is plain owned data and
/// every container it touches is recycled. The round's batch is sized so
/// the steal rides a recycled shell (a sub-`SHELL_SPILL_MIN` steal takes
/// the segment's deliberate tiny-batch allocation path instead — a
/// segment-layer trade, not waker traffic), and the residue drains
/// through local pops, which never touch the allocator.
#[test]
fn future_poll_cycle_allocates_nothing() {
    // 2× the shell-spill minimum: the future's steal takes ⌈16/2⌉ = 8
    // elements through the recycled-shell transfer path.
    const BATCH: u64 = 16;
    let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(2).build();
    let mut consumer = pool.register(); // home segment 0
    let mut producer = pool.register(); // home segment 1
    let waker = Waker::from(Arc::new(NopWake));
    let mut cx = Context::from_waker(&waker);

    let mut round = |v: u64, cx: &mut Context<'_>| {
        let mut fut = consumer.remove_async();
        assert!(Pin::new(&mut fut).poll(cx).is_pending(), "empty pool: future pends");
        for i in 0..BATCH {
            producer.add(v + i); // the first add wakes the registered future
        }
        match Pin::new(&mut fut).poll(cx) {
            Poll::Ready(Ok(_)) => {}
            other => panic!("woken future must resolve, got {other:?}"),
        }
        // Restore the empty pool with exact local pops: the future banked
        // its steal's surplus (7) in the consumer's home segment and the
        // producer still holds the unstolen half (8), so no pop ever falls
        // through to a search.
        for _ in 0..BATCH / 2 - 1 {
            assert!(consumer.try_remove().is_ok(), "banked surplus is local");
        }
        for _ in 0..BATCH / 2 {
            assert!(producer.try_remove().is_ok(), "unstolen half is local");
        }
    };
    for i in 0..WARMUP_ROUNDS as u64 {
        round(i, &mut cx);
    }
    let hits = count_allocs(|| {
        for i in 0..MEASURED_ROUNDS as u64 {
            round(i, &mut cx);
        }
    });
    assert_eq!(
        hits, 0,
        "steady-state create/pend/add/resolve future cycle must not allocate \
         ({MEASURED_ROUNDS} rounds)"
    );
}

/// The fleet dispatch loop under a notify storm that satisfies nobody:
/// key-scoped futures wake on the *other* key's add edge, re-check, and
/// re-register. Wake delivery (dedup flag + ready-queue push), the
/// dispatch round, the search pass, and the re-registration together
/// allocate nothing in steady state.
#[test]
fn fleet_wake_repoll_churn_allocates_nothing() {
    const TASKS: usize = 32;
    const WANTED: u8 = 1;
    const NOISE: u8 = 0;
    // Hot-key detection off: this test pins the waker machinery, and the
    // detector's own steady-state allocation behavior (first-sample count
    // nodes, promotion) is pinned by `alloc_steal.rs`.
    let pool: KeyedPool<u8, u64> = KeyedPoolBuilder::new(2).hot_keys_disabled().build();
    let mut producer = pool.register();
    let h = pool.register();
    let mut fleet = Fleet::new();
    for _ in 0..TASKS {
        fleet.spawn(h.remove_key_async(WANTED));
    }
    assert_eq!(fleet.poll_ready(|_, _| {}), 0, "no WANTED element: all pend");

    let mut round = |v: u64, fleet: &mut Fleet<_>| {
        // The wrong key's add edge wakes every registered future...
        producer.add(NOISE, v);
        // ...and the dispatch round re-polls them all back to pending.
        assert_eq!(fleet.poll_ready(|_, _| {}), 0, "wrong key satisfies nobody");
        assert_eq!(fleet.pending(), TASKS);
        // Take the noise element back so the pool's footprint is stable.
        assert_eq!(producer.try_remove_key(&NOISE), Ok(v));
    };
    for i in 0..WARMUP_ROUNDS as u64 {
        round(i, &mut fleet);
    }
    let hits = count_allocs(|| {
        for i in 0..MEASURED_ROUNDS as u64 {
            round(i, &mut fleet);
        }
    });
    assert_eq!(
        hits, 0,
        "steady-state wake/re-poll fleet churn must not allocate \
         ({MEASURED_ROUNDS} rounds over {TASKS} pending futures)"
    );

    // Cleanup: resolve the fleet so its tasks do not outlive the pool's
    // threads-free scope (close resolves every pending future).
    pool.close();
    let mut closed = 0;
    fleet.drive(|_, result| {
        assert_eq!(result, Err(RemoveError::Closed));
        closed += 1;
    });
    assert_eq!(closed, TASKS);
}
