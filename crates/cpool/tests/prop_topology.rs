//! Property-based tests of the superimposed-tree geometry (`TreeShape`):
//! the index arithmetic behind Manber's search, including Figure 1's
//! matching descendant, checked for every pool size up to 512.

use proptest::prelude::*;

use cpool::search::topology::{TreeShape, ROOT};
use cpool::SegIdx;

fn shapes() -> impl Strategy<Value = TreeShape> {
    (1usize..512).prop_map(TreeShape::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Leaves are the next power of two ≥ segments; slot count is 2·leaves.
    #[test]
    fn shape_basics(shape in shapes()) {
        let leaves = shape.leaves();
        prop_assert!(leaves.is_power_of_two());
        prop_assert!(leaves >= shape.segments());
        prop_assert!(leaves < 2 * shape.segments().next_power_of_two().max(2));
        prop_assert_eq!(shape.node_slots(), 2 * leaves);
        prop_assert_eq!(shape.internal_nodes(), leaves - 1);
    }

    /// leaf_of and seg_of are inverse bijections on the real segments.
    #[test]
    fn leaf_seg_roundtrip(shape in shapes()) {
        for seg in 0..shape.segments() {
            let leaf = shape.leaf_of(SegIdx::new(seg));
            prop_assert!(shape.is_leaf(leaf));
            prop_assert_eq!(shape.seg_of(leaf), Some(SegIdx::new(seg)));
        }
        // Phantom leaves map to None.
        for leaf in shape.leaves() + shape.segments()..2 * shape.leaves() {
            prop_assert_eq!(shape.seg_of(leaf), None);
        }
    }

    /// Parent/sibling/children arithmetic is consistent across the heap.
    #[test]
    fn family_relations(shape in shapes()) {
        for node in 2..shape.node_slots() {
            let parent = shape.parent(node);
            prop_assert!(shape.contains(parent));
            prop_assert_eq!(shape.sibling(shape.sibling(node)), node);
            prop_assert_eq!(shape.parent(shape.sibling(node)), parent);
            prop_assert!(shape.height(parent) == shape.height(node) + 1);
        }
    }

    /// `leaves_under` partitions: a node's range is the disjoint union of
    /// its children's ranges, and the root covers every leaf.
    #[test]
    fn leaves_under_partitions(shape in shapes()) {
        prop_assert_eq!(
            shape.leaves_under(ROOT),
            shape.leaves()..2 * shape.leaves()
        );
        for node in ROOT..shape.leaves() {
            let r = shape.leaves_under(node);
            let l = shape.leaves_under(2 * node);
            let rr = shape.leaves_under(2 * node + 1);
            prop_assert_eq!(r.start, l.start, "left child starts the range");
            prop_assert_eq!(l.end, rr.start, "children abut");
            prop_assert_eq!(rr.end, r.end, "right child ends the range");
        }
    }

    /// The matching descendant (Figure 1): lies in the sibling subtree, at
    /// the same relative offset, and matching back is the identity.
    #[test]
    fn matching_descendant_properties(shape in shapes()) {
        for seg in 0..shape.segments() {
            let leaf = shape.leaf_of(SegIdx::new(seg));
            let mut child = leaf;
            while child > ROOT {
                let m = shape.matching_descendant(leaf, child);
                let sib = shape.sibling(child);
                prop_assert!(shape.is_leaf(m));
                prop_assert!(shape.leaves_under(sib).contains(&m));
                let offset = leaf - shape.leaves_under(child).start;
                let m_offset = m - shape.leaves_under(sib).start;
                prop_assert_eq!(offset, m_offset, "symmetric position");
                prop_assert_eq!(shape.matching_descendant(m, sib), leaf, "involution");
                child = shape.parent(child);
            }
        }
    }

    /// Walking matching descendants level by level from any leaf visits a
    /// leaf of every subtree exactly once — the structural reason a round
    /// covers all segments in log(n) jumps.
    #[test]
    fn matching_walk_covers_disjoint_subtrees(shape in shapes()) {
        let leaf = shape.leaf_of(SegIdx::new(0));
        let mut child = leaf;
        let mut visited: Vec<usize> = vec![leaf];
        while child > ROOT {
            visited.push(shape.matching_descendant(leaf, child));
            child = shape.parent(child);
        }
        // One leaf per level plus the original: log2(leaves) + 1 leaves,
        // all distinct.
        prop_assert_eq!(visited.len(), shape.leaves().ilog2() as usize + 1);
        let mut dedup = visited.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), visited.len(), "all jump targets distinct");
    }

    /// Heights decrease along root-to-leaf paths and `leaves_under` has
    /// exactly 2^height elements.
    #[test]
    fn height_and_range_agree(shape in shapes()) {
        for node in ROOT..shape.node_slots() {
            let h = shape.height(node);
            prop_assert_eq!(shape.leaves_under(node).len(), 1usize << h);
            prop_assert_eq!(shape.is_leaf(node), h == 0);
        }
    }
}
