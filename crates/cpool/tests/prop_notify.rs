//! Property tests of the notify subsystem's end-to-end guarantee: **no
//! lost wakeups**. Arbitrary producer scripts (mixes of single adds and
//! batches) against k consumers blocked in [`WaitStrategy::Block`] removes
//! must hand over every element exactly once, with every consumer released
//! by the close — on both pool frontends. A single lost wakeup deadlocks
//! the scope (the test hangs) or loses an element (the multiset assertion
//! fails).
//!
//! The same guarantee covers the notifier's *waker* waiters: properties
//! below mix parked threads with fleets of `remove_async` futures driven
//! by a single thread on the same pool, so both waiter kinds race for the
//! same add edges and must still conserve the multiset and all terminate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use proptest::prelude::*;

use cpool::prelude::*;

/// A producer script: each entry is one action — a single add (`1`) or a
/// batch of the given size.
fn script() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(prop_oneof![Just(1usize), 2usize..9], 1..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Plain pool: every element the script adds while consumers block is
    /// removed exactly once; the close releases every consumer with
    /// `Closed` only after the residue is drained.
    #[test]
    fn blocked_consumers_receive_every_add_exactly_once(
        consumers in 1usize..5,
        producer_script in script(),
        segs in 1usize..5,
    ) {
        let total: usize = producer_script.iter().sum();
        let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(segs).seed(7).build();
        let received = AtomicU64::new(0);
        // One slot per element value: each must be delivered exactly once.
        let seen: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();

        thread::scope(|s| {
            // Producer registered before any consumer runs: a consumer
            // alone on the gate would read its solitude as terminal.
            let mut p = pool.register();
            for _ in 0..consumers {
                let mut h = pool.register();
                let (received, seen) = (&received, &seen);
                s.spawn(move || {
                    let err = loop {
                        match h.remove(WaitStrategy::Block) {
                            Ok(v) => {
                                seen[v as usize].fetch_add(1, Ordering::Relaxed);
                                received.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(err) => break err,
                        }
                    };
                    assert_eq!(err, RemoveError::Closed, "close released this consumer");
                });
            }
            let script = producer_script.clone();
            s.spawn(move || {
                let mut next = 0u64;
                for action in script {
                    if action == 1 {
                        p.add(next);
                        next += 1;
                    } else {
                        p.add_batch(next..next + action as u64);
                        next += action as u64;
                    }
                    thread::yield_now();
                }
                p.close();
            });
        });

        prop_assert_eq!(received.load(Ordering::Relaxed), total as u64);
        prop_assert_eq!(pool.total_len(), 0);
        for (v, slot) in seen.iter().enumerate() {
            prop_assert_eq!(slot.load(Ordering::Relaxed), 1, "value {} delivered once", v);
        }
    }

    /// Keyed pool: the same guarantee over `(key, value)` pairs through the
    /// generic `PoolOps` vocabulary (any-key blocking removes + batches).
    #[test]
    fn keyed_blocked_consumers_conserve_the_multimap(
        consumers in 1usize..4,
        producer_script in script(),
        segs in 1usize..4,
    ) {
        let total: usize = producer_script.iter().sum();
        let pool: KeyedPool<u8, u64> = KeyedPool::new(segs);
        let received = AtomicU64::new(0);
        let seen: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
        let key_of = |v: u64| (v % 5) as u8;

        thread::scope(|s| {
            // Producer registered before any consumer runs: a consumer
            // alone on the gate would read its solitude as terminal.
            let mut p = pool.register();
            for _ in 0..consumers {
                let mut h = pool.register();
                let (received, seen) = (&received, &seen);
                s.spawn(move || {
                    let err = loop {
                        match h.remove(WaitStrategy::Block) {
                            Ok((k, v)) => {
                                assert_eq!(k, key_of(v), "pair integrity");
                                seen[v as usize].fetch_add(1, Ordering::Relaxed);
                                received.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(err) => break err,
                        }
                    };
                    assert_eq!(err, RemoveError::Closed);
                });
            }
            let script = producer_script.clone();
            s.spawn(move || {
                let mut next = 0u64;
                for action in script {
                    if action == 1 {
                        PoolOps::add(&mut p, (key_of(next), next));
                        next += 1;
                    } else {
                        p.add_batch((next..next + action as u64).map(|v| (key_of(v), v)));
                        next += action as u64;
                    }
                    thread::yield_now();
                }
                p.close();
            });
        });

        prop_assert_eq!(received.load(Ordering::Relaxed), total as u64);
        prop_assert_eq!(pool.total_len(), 0);
        for (v, slot) in seen.iter().enumerate() {
            prop_assert_eq!(slot.load(Ordering::Relaxed), 1, "pair {} delivered once", v);
        }
    }

    /// Mixed waiter kinds on one pool: parked `Block` consumers on their
    /// own threads *and* a fleet of `remove_async` futures driven by one
    /// more thread. Both register on the same notifier (parker list and
    /// waker list drain as one atomic step), so every element must still
    /// be delivered exactly once across both kinds, and the close must
    /// release every thread and resolve every future.
    #[test]
    fn mixed_parked_and_future_waiters_conserve_elements(
        consumers in 1usize..3,
        futures in 1usize..24,
        producer_script in script(),
        segs in 1usize..4,
    ) {
        let total: usize = producer_script.iter().sum();
        let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(segs).seed(11).build();
        let received = AtomicU64::new(0);
        let seen: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();

        thread::scope(|s| {
            // Producer registered before any consumer runs: a consumer
            // alone on the gate would read its solitude as terminal.
            let mut p = pool.register();
            for _ in 0..consumers {
                let mut h = pool.register();
                let (received, seen) = (&received, &seen);
                s.spawn(move || {
                    let err = loop {
                        match h.remove(WaitStrategy::Block) {
                            Ok(v) => {
                                seen[v as usize].fetch_add(1, Ordering::Relaxed);
                                received.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(err) => break err,
                        }
                    };
                    assert_eq!(err, RemoveError::Closed, "close released this consumer");
                });
            }
            // The async side: one thread drives a fleet of pending
            // removes, respawning a replacement for every satisfied one so
            // the futures keep competing with the parked threads until the
            // close resolves them all.
            let h = pool.register();
            let (received, seen) = (&received, &seen);
            s.spawn(move || {
                let mut fleet = Fleet::new();
                for _ in 0..futures {
                    fleet.spawn(h.remove_async());
                }
                loop {
                    let mut respawn = 0usize;
                    for (_, result) in fleet.drive_collect() {
                        match result {
                            Ok(v) => {
                                seen[v as usize].fetch_add(1, Ordering::Relaxed);
                                received.fetch_add(1, Ordering::Relaxed);
                                respawn += 1;
                            }
                            Err(err) => {
                                assert_eq!(err, RemoveError::Closed, "futures end via close");
                            }
                        }
                    }
                    if respawn == 0 {
                        break;
                    }
                    for _ in 0..respawn {
                        fleet.spawn(h.remove_async());
                    }
                }
            });
            let script = producer_script.clone();
            s.spawn(move || {
                let mut next = 0u64;
                for action in script {
                    if action == 1 {
                        p.add(next);
                        next += 1;
                    } else {
                        p.add_batch(next..next + action as u64);
                        next += action as u64;
                    }
                    thread::yield_now();
                }
                p.close();
            });
        });

        prop_assert_eq!(received.load(Ordering::Relaxed), total as u64);
        prop_assert_eq!(pool.total_len(), 0);
        for (v, slot) in seen.iter().enumerate() {
            prop_assert_eq!(slot.load(Ordering::Relaxed), 1, "value {} delivered once", v);
        }
    }

    /// Key-scoped futures only resolve with their own key's elements: one
    /// fleet holds per-key `remove_key_async` futures for two keys while a
    /// producer interleaves both keys' adds. Every future is satisfied by
    /// exactly one element of its key — wrong-key traffic wakes a future
    /// only to re-check and re-register, never to resolve it.
    #[test]
    fn future_waiters_scoped_to_a_key_only_take_their_key(
        per_key in 1usize..10,
        segs in 1usize..4,
    ) {
        let pool: KeyedPool<u8, u64> = KeyedPool::new(segs);
        thread::scope(|s| {
            let mut p = pool.register(); // before consumers: see above
            let h = pool.register();
            s.spawn(move || {
                let mut fleet = Fleet::new();
                for i in 0..2 * per_key {
                    fleet.spawn(h.remove_key_async((i % 2) as u8));
                }
                let mut got = [0usize; 2];
                for (id, result) in fleet.drive_collect() {
                    let v = result.expect("every keyed future is satisfied");
                    assert_eq!((v % 2) as u8, (id % 2) as u8, "wrong key delivered");
                    got[id % 2] += 1;
                }
                assert_eq!(got, [per_key, per_key]);
            });
            s.spawn(move || {
                for v in 0..2 * per_key as u64 {
                    p.add((v % 2) as u8, v);
                    thread::yield_now();
                }
                // No close: every future is satisfied by exactly one
                // element of its key, so the fleet drains on its own.
            });
        });
        prop_assert_eq!(pool.total_len(), 0);
    }

    /// Keyed blocking removes scoped to a single key: wrong-key traffic
    /// neither satisfies nor permanently wakes the waiter, and the close
    /// ends the wait with `Closed` once that key's residue is gone.
    #[test]
    fn keyed_per_key_waiters_only_take_their_key(
        per_key in 1usize..12,
        segs in 1usize..4,
    ) {
        let pool: KeyedPool<u8, u64> = KeyedPool::new(segs);
        thread::scope(|s| {
            let mut p = pool.register(); // before consumers: see above
            for key in 0u8..2 {
                let mut h = pool.register();
                s.spawn(move || {
                    let mut got = 0usize;
                    let err = loop {
                        match h.remove_key(&key, WaitStrategy::Block) {
                            Ok(v) => {
                                assert_eq!((v % 2) as u8, key, "wrong key delivered");
                                got += 1;
                            }
                            Err(err) => break err,
                        }
                    };
                    assert_eq!(got, per_key, "key {key} got its share");
                    assert_eq!(err, RemoveError::Closed);
                });
            }
            s.spawn(move || {
                for v in 0..2 * per_key as u64 {
                    p.add((v % 2) as u8, v);
                    thread::yield_now();
                }
                p.close();
            });
        });
        prop_assert_eq!(pool.total_len(), 0);
    }
}
