//! Property-based tests of the whole pool: arbitrary single- and
//! multi-process operation scripts against a reference model.

use proptest::prelude::*;

use cpool::prelude::*;
use cpool::{PolicyKind, RemoveError};

#[derive(Clone, Copy, Debug)]
enum Op {
    Add(u16),
    Remove,
}

fn script() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(prop_oneof![(0u16..500).prop_map(Op::Add), Just(Op::Remove)], 0..300)
}

fn policy_kind() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![Just(PolicyKind::Linear), Just(PolicyKind::Random), Just(PolicyKind::Tree),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single process, multi-segment pool: behaves exactly like a multiset.
    /// Removes succeed iff the pool is non-empty (a lone process aborts on
    /// an empty pool rather than deadlocking).
    #[test]
    fn single_process_pool_is_a_multiset(kind in policy_kind(), ops in script(), segs in 1usize..9) {
        let pool: Pool<VecSegment<u16>, DynPolicy> =
            PoolBuilder::new(segs).seed(7).build_policy(kind);
        let mut h = pool.register();
        let mut model: Vec<u16> = Vec::new();

        for op in &ops {
            match op {
                Op::Add(v) => {
                    h.add(*v);
                    model.push(*v);
                }
                Op::Remove => match h.try_remove() {
                    Ok(v) => {
                        let at = model.iter().position(|&m| m == v)
                            .expect("pool returned a value the model holds");
                        model.swap_remove(at);
                    }
                    Err(err) => {
                        prop_assert_eq!(err, RemoveError::Aborted);
                        prop_assert!(model.is_empty());
                    }
                },
            }
            prop_assert_eq!(pool.total_len(), model.len());
        }

        // Stats identity: adds - removes == residue.
        let stats = h.stats();
        prop_assert_eq!(stats.adds - stats.removes, model.len() as u64);
    }

    /// Multi-process: N handles split one script round-robin; afterwards the
    /// union of everything removed plus the residue equals everything added.
    #[test]
    fn multi_process_conserves(kind in policy_kind(), ops in script(), procs in 2usize..6) {
        let pool: Pool<VecSegment<u16>, DynPolicy> =
            PoolBuilder::new(procs).seed(13).build_policy(kind);
        let mut handles: Vec<_> = (0..procs).map(|_| pool.register()).collect();

        let mut added: Vec<u16> = Vec::new();
        let mut removed: Vec<u16> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let h = &mut handles[i % procs];
            match op {
                Op::Add(v) => {
                    h.add(*v);
                    added.push(*v);
                }
                // Removing from an empty pool while other *idle* handles
                // stay registered would search forever (the §3.2 gate only
                // fires when every registered process searches, which models
                // the paper's all-processes-active workloads). The script is
                // single-threaded, so skip those removes.
                Op::Remove if added.len() > removed.len() => {
                    let v = h.try_remove().expect("non-empty pool yields");
                    removed.push(v);
                }
                Op::Remove => {}
            }
        }

        // Drop every handle but one: the survivor can then drain the pool
        // alone. Its aborts are conservative (they can fire before the ring
        // walk reaches a stocked segment), so retry until the pool is
        // observed empty — the abort-path cursor persistence guarantees the
        // retries make progress around the ring.
        let mut drainer = handles.remove(0);
        drop(handles);
        let mut residue = Vec::new();
        loop {
            match drainer.try_remove() {
                Ok(v) => residue.push(v),
                Err(err) => {
                    prop_assert_eq!(err, RemoveError::Aborted);
                    if pool.total_len() == 0 {
                        break;
                    }
                }
            }
        }
        prop_assert_eq!(pool.total_len(), 0);

        let mut lhs = removed;
        lhs.extend(residue);
        lhs.sort_unstable();
        added.sort_unstable();
        prop_assert_eq!(lhs, added, "removed + residue == added (as multisets)");
    }

    /// The livelock gate's invariant at the pool level: a *lone* registered
    /// process never blocks in `try_remove`, whatever the pool size.
    #[test]
    fn lone_process_never_blocks(kind in policy_kind(), segs in 1usize..20) {
        let pool: Pool<LockedCounter, DynPolicy> = PoolBuilder::new(segs).build_policy(kind);
        let mut h = pool.register();
        prop_assert_eq!(h.try_remove(), Err(RemoveError::Aborted));
        h.add(());
        prop_assert!(h.try_remove().is_ok());
    }

    /// Steal accounting: after any script, elements_stolen ≥ steals and
    /// segments_examined ≥ steals (each steal examined at least the victim).
    #[test]
    fn steal_accounting_inequalities(kind in policy_kind(), ops in script()) {
        let procs = 4;
        let pool: Pool<VecSegment<u16>, DynPolicy> =
            PoolBuilder::new(procs).seed(3).build_policy(kind);
        let mut handles: Vec<_> = (0..procs).map(|_| pool.register()).collect();
        let mut live = 0usize;
        for (i, op) in ops.iter().enumerate() {
            let h = &mut handles[i % procs];
            match op {
                Op::Add(v) => {
                    h.add(*v);
                    live += 1;
                }
                // See multi_process_conserves: empty-pool removes with idle
                // registered peers would search forever in this
                // single-threaded driver.
                Op::Remove if live > 0 => {
                    let _ = h.try_remove().expect("non-empty pool yields");
                    live -= 1;
                }
                Op::Remove => {}
            }
        }
        drop(handles);
        let m = pool.stats().merged();
        prop_assert!(m.elements_stolen >= m.steals);
        prop_assert!(m.segments_examined >= m.steals);
        prop_assert!(m.removes + m.aborted_removes + m.adds == m.ops());
    }
}
