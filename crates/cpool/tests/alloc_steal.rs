//! The transfer layer's headline guarantee: the **steady-state steal path
//! performs zero heap allocations**, on both frontends.
//!
//! Blocks and transfer shells are recycled through per-pool free lists
//! (`cpool::transfer`), so once a pool has warmed up — its blocks, batch
//! shells, and bucket capacities grown to the workload's footprint — a
//! producer/thief cycle of adds, steals (two-phase drain + refill), and
//! removes touches the allocator not at all. This file installs a counting
//! `#[global_allocator]` and asserts exactly that.
//!
//! The test lives in its own integration-test binary because a global
//! allocator is process-wide. Counting is scoped to the *measuring thread*
//! (armed flag + a const-initialized thread-local): the libtest harness
//! thread stays alive beside the test and occasionally allocates, and the
//! guarantee under test is about the thread executing the steal path, not
//! about bystanders.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use cpool::{
    BlockSegment, KeyedPool, LaneSegment, LfSegment, LinearSearch, Pool, PoolBuilder, Segment,
    VecSegment,
};

/// Counts allocator hits (alloc + realloc) from the armed thread.
struct CountingAlloc;

static HITS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    // `const` init: reading this inside the allocator performs no lazy
    // initialization and therefore cannot itself allocate or recurse.
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

fn armed() -> bool {
    ARMED.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            HITS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if armed() {
            HITS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            HITS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `op` with this thread's counter armed and returns the number of
/// allocator hits it caused.
fn count_allocs(op: impl FnOnce()) -> usize {
    HITS.store(0, Ordering::SeqCst);
    ARMED.with(|armed| armed.set(true));
    op();
    ARMED.with(|armed| armed.set(false));
    HITS.load(Ordering::SeqCst)
}

const WARMUP_ROUNDS: usize = 50;
const MEASURED_ROUNDS: usize = 50;
/// Elements the producer adds per round; the thief steals ⌈n/2⌉ of them.
const PER_ROUND: u64 = 64;

/// One steady-state round on the plain pool: the victim produces a burst,
/// the thief's first remove runs the full search + two-phase steal-half
/// transfer (32 elements: one kept, 31 refilled into its home segment),
/// both sides then consume their halves so every block/shell cycles back
/// through the pool's free lists.
fn pool_round<S: Segment<Item = u64>>(
    thief: &mut cpool::Handle<S, LinearSearch>,
    victim: &mut cpool::Handle<S, LinearSearch>,
) {
    for i in 0..PER_ROUND {
        victim.add(i);
    }
    for _ in 0..PER_ROUND / 2 {
        thief.try_remove().expect("victim produced this round");
    }
    for _ in 0..PER_ROUND / 2 {
        victim.try_remove().expect("residue is local");
    }
}

fn check_pool_frontend<S: Segment<Item = u64>>(name: &str) {
    let pool: Pool<S, LinearSearch> = PoolBuilder::new(2).build();
    let mut thief = pool.register(); // home segment 0
    let mut victim = pool.register(); // home segment 1
    for _ in 0..WARMUP_ROUNDS {
        pool_round(&mut thief, &mut victim);
    }
    assert_eq!(pool.total_len(), 0, "{name}: rounds are balanced");
    let hits = count_allocs(|| {
        for _ in 0..MEASURED_ROUNDS {
            pool_round(&mut thief, &mut victim);
        }
    });
    let steals = thief.stats().steals;
    assert!(steals >= (WARMUP_ROUNDS + MEASURED_ROUNDS) as u64, "{name}: every round stole");
    assert_eq!(
        hits, 0,
        "{name}: steady-state add/steal/refill/remove cycle must not allocate \
         ({MEASURED_ROUNDS} rounds, {steals} steals total)"
    );
}

/// The primitive under all of the pool-level guarantees above: the
/// lock-free Treiber stack the free lists ride on keeps popped nodes on an
/// internal spares list and reuses them for later pushes, so past the
/// high-water mark a push/pop churn performs zero allocations — `pop`
/// never frees, `push` only allocates when no spare exists.
#[test]
fn treiber_free_list_steady_state_allocates_nothing() {
    use crossbeam_queue::Stack;

    let stack = Stack::new();
    // Warm to the high-water mark: every node the measured churn needs is
    // allocated here once and then recycled through the spares list.
    for i in 0..PER_ROUND {
        stack.push(i);
    }
    for _ in 0..PER_ROUND {
        stack.pop().expect("warmed");
    }
    let hits = count_allocs(|| {
        for _ in 0..MEASURED_ROUNDS {
            for i in 0..PER_ROUND {
                stack.push(i);
            }
            for _ in 0..PER_ROUND {
                stack.pop().expect("pushed this round");
            }
        }
    });
    assert_eq!(
        hits, 0,
        "Stack must recycle nodes: {MEASURED_ROUNDS} rounds of {PER_ROUND} push/pop pairs \
         past the high-water mark"
    );
}

/// The lock-free segment's backing storage in isolation: past the warmup
/// high-water mark, add/remove churn deep enough to overflow the bounded
/// ring fast path (256 slots) and cross several overflow-queue block
/// boundaries draws every block from the queue's internal spare list —
/// the `SegQueue` analogue of the Treiber-stack guarantee below, with the
/// pre-allocated ring in front.
#[test]
fn lf_segment_steady_state_churn_allocates_nothing() {
    const DEPTH: u64 = PER_ROUND * 8; // 512: past the ring, into overflow
    let seg = LfSegment::<u64>::new();
    // Warm past several overflow block boundaries (blocks hold 31
    // elements; ~256 elements spill per round).
    for round in 0..WARMUP_ROUNDS {
        for i in 0..DEPTH {
            seg.add(round as u64 + i);
        }
        for _ in 0..DEPTH {
            seg.try_remove().expect("added this round");
        }
    }
    let hits = count_allocs(|| {
        for round in 0..MEASURED_ROUNDS {
            for i in 0..DEPTH {
                seg.add(round as u64 + i);
            }
            for _ in 0..DEPTH {
                seg.try_remove().expect("added this round");
            }
        }
    });
    assert_eq!(
        hits, 0,
        "LfSegment churn past the high-water mark must recycle overflow blocks, not allocate"
    );
}

fn keyed_round(thief: &mut cpool::KeyedHandle<u8, u64>, victim: &mut cpool::KeyedHandle<u8, u64>) {
    const KEY: u8 = 7;
    for i in 0..PER_ROUND {
        victim.add(KEY, i);
    }
    for _ in 0..PER_ROUND / 2 {
        thief.try_remove_key(&KEY).expect("victim produced this round");
    }
    for _ in 0..PER_ROUND / 2 {
        victim.try_remove_key(&KEY).expect("residue is local");
    }
}

#[test]
fn steady_state_steal_paths_allocate_nothing() {
    // Frontend 1a: the plain pool over block segments — whole blocks move
    // by handle through the two-phase transfer and recycle through the
    // family's block cache.
    check_pool_frontend::<BlockSegment<u64>>("Pool<BlockSegment>");

    // Frontend 1b: the plain pool over vec segments — the transfer vector
    // itself is a recycled shell from the family's cache.
    check_pool_frontend::<VecSegment<u64>>("Pool<VecSegment>");

    // Frontend 1c: the fully lock-free segment — the backing queue
    // recirculates its spent blocks through an internal spare list and the
    // steal shells come from the same family cache as 1b, so going
    // lock-free keeps the zero-allocation guarantee.
    check_pool_frontend::<LfSegment<u64>>("Pool<LfSegment>");

    // Frontend 1d: the sharded segment — the lane sweep fills one recycled
    // shell via `remove_up_to_into` (a per-lane batch would shed the
    // shell's capacity on every hop), and deposits land as whole batches
    // in a single lane.
    check_pool_frontend::<LaneSegment<VecSegment<u64>, 4>>("Pool<LaneSegment<VecSegment>>");

    // Lone-element steals on the block pool: with a single element stolen
    // the two-phase probe's refill leg is a pure container return, and the
    // shell circulating between steals is what carries the spent block
    // back to the producer.
    let pool: Pool<BlockSegment<u64>, LinearSearch> = PoolBuilder::new(2).build();
    let mut thief = pool.register();
    let mut victim = pool.register();
    for i in 0..WARMUP_ROUNDS as u64 {
        victim.add(i);
        thief.try_remove().expect("victim holds one element");
    }
    let hits = count_allocs(|| {
        for i in 0..MEASURED_ROUNDS as u64 {
            victim.add(i);
            thief.try_remove().expect("victim holds one element");
        }
    });
    assert_eq!(hits, 0, "lone-element block steal cycle must not allocate");

    // Frontend 2: the keyed pool — keyed steals fill recycled shells and
    // emptied buckets stay resident, so bucket capacity and map nodes are
    // reused across rounds.
    let pool: KeyedPool<u8, u64> = KeyedPool::new(2);
    let mut thief = pool.register();
    let mut victim = pool.register();
    for _ in 0..WARMUP_ROUNDS {
        keyed_round(&mut thief, &mut victim);
    }
    assert_eq!(pool.total_len(), 0, "keyed: rounds are balanced");
    let hits = count_allocs(|| {
        for _ in 0..MEASURED_ROUNDS {
            keyed_round(&mut thief, &mut victim);
        }
    });
    assert!(thief.stats().steals >= (WARMUP_ROUNDS + MEASURED_ROUNDS) as u64);
    assert_eq!(
        hits, 0,
        "KeyedPool: steady-state keyed add/steal/refill/remove cycle must not allocate"
    );
}

/// The hot-key **sub-shard** steady state: with the traffic key's bucket
/// split on both segments, the same keyed add/steal/refill/remove cycle
/// stays allocation-free — sub-shard pushes and pops reuse shard capacity
/// grown in warmup, the sub-shard-wise steal-half fills a recycled shell,
/// and the detector's pre-allocated sample window reuses its single map
/// node for the stable hot key (sampling runs at the default rate
/// throughout the measured rounds).
#[test]
fn hot_key_sub_shard_steady_state_allocates_nothing() {
    let pool: KeyedPool<u8, u64> = KeyedPool::new(2);
    pool.promote_key(&7); // keyed_round's traffic key
    let mut thief = pool.register();
    let mut victim = pool.register();
    // Warmup both grows shard/shell capacity and lets the sampling window
    // saturate on the hot key, so promotion state is stable before
    // measuring (an early sample may demote the manual split until enough
    // heat accumulates; by the end of warmup both segments are split).
    for _ in 0..WARMUP_ROUNDS {
        keyed_round(&mut thief, &mut victim);
    }
    assert_eq!(pool.total_len(), 0, "hot rounds are balanced");
    assert_eq!(pool.stats().pool.hot_buckets, 2, "the hot key is split on both segments");
    let hits = count_allocs(|| {
        for _ in 0..MEASURED_ROUNDS {
            keyed_round(&mut thief, &mut victim);
        }
    });
    assert_eq!(pool.stats().pool.hot_buckets, 2, "still split: no demote thrash under heat");
    assert!(thief.stats().steals >= (WARMUP_ROUNDS + MEASURED_ROUNDS) as u64, "every round stole");
    assert_eq!(
        hits, 0,
        "KeyedPool: the sub-shard add/steal/refill/remove steady state must not allocate \
         ({MEASURED_ROUNDS} rounds through split buckets)"
    );
}
