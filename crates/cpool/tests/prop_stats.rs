//! Property-based tests for the statistics layer: the log₂ histogram against
//! an exact model, and the derived-metric identities of `ProcStats`.

use proptest::prelude::*;

use cpool::{Histogram, ProcStats};

fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![Just(0u64), 1u64..100, 1u64..1_000_000, (0u32..63).prop_map(|b| 1u64 << b),],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// count/sum/min/max/mean agree with an exact model for any sample set.
    /// The histogram's sum saturates by design (it aggregates virtual-time
    /// nanoseconds over arbitrarily long runs), so the model saturates too.
    #[test]
    fn histogram_matches_exact_model(xs in samples()) {
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let model_sum = xs.iter().fold(0u64, |acc, &x| acc.saturating_add(x));
        prop_assert_eq!(h.count(), xs.len() as u64);
        prop_assert_eq!(h.sum(), model_sum);
        prop_assert_eq!(h.min(), xs.iter().min().copied());
        prop_assert_eq!(h.max(), xs.iter().max().copied());
        if let Some(mean) = h.mean() {
            let exact = model_sum as f64 / xs.len() as f64;
            prop_assert!((mean - exact).abs() < 1e-6 * exact.max(1.0));
        }
    }

    /// The quantile is bucket-accurate: the reported value is ≥ the exact
    /// quantile and within one power of two of it (the bucket's width), and
    /// quantiles are monotone in q.
    #[test]
    fn histogram_quantiles_are_bucket_accurate(mut xs in samples()) {
        prop_assume!(!xs.is_empty());
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        xs.sort_unstable();
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
            let exact = xs[rank - 1];
            let reported = h.quantile(q).expect("non-empty");
            prop_assert!(reported >= exact, "q={q}: {reported} >= {exact}");
            prop_assert!(
                reported <= exact.saturating_mul(2).max(1),
                "q={q}: {reported} within the 2x bucket of {exact}"
            );
        }
        // Monotonicity.
        let qs: Vec<u64> = (0..=10).map(|i| h.quantile(i as f64 / 10.0).unwrap()).collect();
        prop_assert!(qs.windows(2).all(|w| w[0] <= w[1]));
    }

    /// merge(a, b) is exactly record(a ++ b).
    #[test]
    fn histogram_merge_is_concat(xs in samples(), ys in samples()) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for &x in &xs {
            a.record(x);
            c.record(x);
        }
        for &y in &ys {
            b.record(y);
            c.record(y);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), c.count());
        prop_assert_eq!(a.sum(), c.sum());
        prop_assert_eq!(a.min(), c.min());
        prop_assert_eq!(a.max(), c.max());
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            prop_assert_eq!(a.quantile(q), c.quantile(q));
        }
    }

    /// ProcStats::merge is commutative and associative on every derived
    /// metric (so per-process order cannot change an experiment's results).
    #[test]
    fn proc_stats_merge_is_commutative_and_associative(
        a in arb_stats(), b in arb_stats(), c in arb_stats()
    ) {
        let ab_c = {
            let mut x = a.clone();
            x.merge(&b);
            x.merge(&c);
            x
        };
        let a_bc = {
            let mut y = b.clone();
            y.merge(&c);
            let mut x = a.clone();
            x.merge(&y);
            x
        };
        let ba_c = {
            let mut x = b.clone();
            x.merge(&a);
            x.merge(&c);
            x
        };
        for (lhs, rhs) in [(&ab_c, &a_bc), (&ab_c, &ba_c)] {
            prop_assert_eq!(lhs.ops(), rhs.ops());
            prop_assert_eq!(lhs.adds, rhs.adds);
            prop_assert_eq!(lhs.steals, rhs.steals);
            prop_assert_eq!(lhs.elements_stolen, rhs.elements_stolen);
            prop_assert_eq!(lhs.add_ns, rhs.add_ns);
            prop_assert_eq!(lhs.measured_mix(), rhs.measured_mix());
            prop_assert_eq!(lhs.elements_per_steal(), rhs.elements_per_steal());
        }
    }

    /// Derived-metric identities hold for arbitrary counters.
    #[test]
    fn derived_metric_identities(s in arb_stats()) {
        prop_assert_eq!(s.ops(), s.adds + s.removes + s.aborted_removes);
        if let Some(mix) = s.measured_mix() {
            prop_assert!((0.0..=1.0).contains(&mix));
        }
        if let Some(f) = s.steal_fraction() {
            prop_assert!(f >= 0.0);
            // steals <= removes, so the fraction is <= 1 whenever removes
            // dominate attempts; with aborted attempts it only shrinks.
            prop_assert!(f <= 1.0);
        }
        if let Some(e) = s.elements_per_steal() {
            prop_assert!(e >= 1.0, "every steal takes at least one element");
        }
    }
}

prop_compose! {
    fn arb_stats()(
        adds in 0u64..10_000,
        removes in 0u64..10_000,
        aborted in 0u64..1_000,
        steal_bound in 0u64..1_000,
        extra_per_steal in 0u64..32,
        add_ns in 0u64..1u64 << 40,
        remove_ns in 0u64..1u64 << 40,
    ) -> ProcStats {
        // Steals satisfy removes, so steals <= removes; each steal takes at
        // least one element.
        let steals = steal_bound.min(removes);
        ProcStats {
            adds,
            removes,
            aborted_removes: aborted,
            steals,
            segments_examined: steals * 3,
            elements_stolen: steals * (1 + extra_per_steal),
            add_ns,
            remove_ns,
            ..ProcStats::default()
        }
    }
}
