//! # concurrent-pools
//!
//! Umbrella crate for the reproduction of Kotz & Ellis, *Evaluation of
//! Concurrent Pools* (ICDCS 1989): re-exports the workspace crates and
//! hosts the runnable examples and cross-crate integration tests.
//!
//! * [`cpool`] — the concurrent pool data structure (segments, steal
//!   protocol, tree/linear/random search, livelock gate, statistics).
//! * [`numa_sim`] — the machine substrate (latency models, delay injection,
//!   deterministic virtual-time scheduler).
//! * [`workload`] — random-mix and producer/consumer workload generators.
//! * [`harness`] — experiment runner, metrics, tables, charts, and the
//!   per-figure regenerators.
//! * [`baselines`] — shared work-list baselines (global-lock stack et al.).
//! * [`ttt`] — the 4×4×4 tic-tac-toe application study.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for paper-vs-measured
//! results.

pub use baselines;
pub use cpool;
pub use harness;
pub use numa_sim;
pub use ttt;
pub use workload;

/// Commonly used items across the workspace.
pub mod prelude {
    pub use cpool::prelude::*;
    pub use numa_sim::{LatencyModel, RealTiming, SimScheduler, SimTiming, Topology};
    pub use workload::{Arrangement, JobMix, Op, OpBudget, OpStream, Role};
}
