//! Cross-crate conservation tests: whatever the policy, segment kind, or
//! interleaving, a pool never loses, duplicates, or invents elements.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;

use concurrent_pools::prelude::*;
use cpool::{NodeStoreKind, PolicyKind};

/// Every value pushed through a heavily-stolen pool comes out exactly once.
#[test]
fn unique_values_survive_stealing_for_every_policy() {
    for kind in PolicyKind::ALL {
        let n = 8;
        let per = 2_000u64;
        let pool: Pool<VecSegment<u64>, DynPolicy> =
            PoolBuilder::new(n).seed(11).node_store(NodeStoreKind::Locked).build_policy(kind);
        let seen = Mutex::new(HashSet::new());

        thread::scope(|s| {
            for w in 0..n as u64 {
                let mut h = pool.register();
                let seen = &seen;
                s.spawn(move || {
                    let mut local = Vec::with_capacity(per as usize);
                    // Interleave adds and removes so steals happen mid-run.
                    for i in 0..per {
                        h.add(w * per + i);
                        if i % 3 == 0 {
                            if let Ok(v) = h.try_remove() {
                                local.push(v);
                            }
                        }
                    }
                    let mut got = local.len() as u64;
                    while got < per {
                        if let Ok(v) = h.remove(WaitStrategy::Yield) {
                            local.push(v);
                            got += 1;
                        }
                    }
                    let mut seen = seen.lock().unwrap();
                    for v in local {
                        assert!(seen.insert(v), "value {v} removed twice ({kind})");
                    }
                });
            }
        });

        assert_eq!(pool.total_len(), 0, "{kind}: pool drained");
        assert_eq!(
            seen.into_inner().unwrap().len() as u64,
            n as u64 * per,
            "{kind}: every value came out exactly once"
        );
    }
}

/// Counting segments: global adds − removes always equals the residue.
#[test]
fn counting_pool_balances_for_every_policy_and_store() {
    for kind in PolicyKind::ALL {
        for store in [NodeStoreKind::Locked, NodeStoreKind::Atomic] {
            let n = 4;
            let pool: Pool<AtomicCounter, DynPolicy> =
                PoolBuilder::new(n).seed(3).node_store(store).build_policy(kind);
            pool.fill_evenly(100);

            let removed = AtomicU64::new(0);
            let added = AtomicU64::new(0);
            thread::scope(|s| {
                for w in 0..n {
                    let mut h = pool.register();
                    let (removed, added) = (&removed, &added);
                    s.spawn(move || {
                        for i in 0..1_000 {
                            if (i + w) % 2 == 0 {
                                h.add(());
                                added.fetch_add(1, Ordering::Relaxed);
                            } else if h.try_remove().is_ok() {
                                removed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            });

            let expect = 100 + added.load(Ordering::Relaxed) - removed.load(Ordering::Relaxed);
            assert_eq!(
                pool.total_len() as u64,
                expect,
                "{kind}/{store:?}: adds - removes == residue"
            );
        }
    }
}

/// The merged statistics agree with the ground truth counters.
#[test]
fn stats_match_ground_truth() {
    let n = 6;
    let pool: Pool<LockedCounter, LinearSearch> = PoolBuilder::new(n).seed(5).build();
    pool.fill_evenly(60);

    thread::scope(|s| {
        for _ in 0..n {
            let mut h = pool.register();
            s.spawn(move || {
                for i in 0..500 {
                    if i % 4 == 0 {
                        h.add(());
                    } else {
                        let _ = h.try_remove();
                    }
                }
            });
        }
    });

    let merged = pool.stats().merged();
    assert_eq!(merged.ops(), 500 * n as u64, "every op accounted");
    assert_eq!(
        60 + merged.adds - merged.removes,
        pool.total_len() as u64,
        "stats balance against the residue"
    );
    // Each successful steal satisfied one remove and moved stolen-1 elements
    // into the thief's segment, so elements_stolen >= steals.
    assert!(merged.elements_stolen >= merged.steals);
}

/// `fill_evenly` seeds without charging any process and balances segments.
#[test]
fn fill_evenly_is_balanced_and_unattributed() {
    let pool: Pool<LockedCounter, DynPolicy> = PoolBuilder::new(5).build_policy(PolicyKind::Random);
    pool.fill_evenly(23);
    let sizes = pool.segment_sizes();
    assert_eq!(sizes.iter().sum::<usize>(), 23);
    assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    assert!(pool.stats().per_proc.is_empty(), "no process charged for the fill");
}

/// Dropping handles mid-run deposits their stats; late registrants keep the
/// gate consistent and the pool usable.
#[test]
fn churning_handles_keeps_pool_consistent() {
    let pool: Pool<LockedCounter, LinearSearch> = PoolBuilder::new(4).build();
    for round in 0..10 {
        let mut h = pool.register();
        for _ in 0..=round {
            h.add(());
        }
        drop(h);
    }
    assert_eq!(pool.gate().registered(), 0);
    assert_eq!(pool.stats().per_proc.len(), 10);
    assert_eq!(pool.total_len(), 55, "1+2+..+10 adds survived the churn");
}
