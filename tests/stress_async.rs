//! Async-layer stress: close/poll races, thousand-future fleets, and
//! timeout resolution — the waker-based twin of `tests/lifecycle.rs`.
//!
//! The property these tests defend is *termination with conservation*: a
//! lost wakeup between a future registering its waker and going pending
//! (or between `close()` flipping the flag and draining the waker list)
//! leaves a future pending forever, and the watchdog trips. CI runs this
//! file under `--release` with a hard outer `timeout` (optimized codegen
//! shrinks the race windows the dev profile masks).

use std::collections::BTreeSet;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use concurrent_pools::prelude::*;
use cpool::KeyedPool;

/// Runs `scenario` on its own thread and panics if it does not finish
/// within `deadline` — the lost-wakeup detector.
fn with_deadline(deadline: Duration, scenario: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let runner = thread::spawn(move || {
        scenario();
        let _ = tx.send(());
    });
    match rx.recv_timeout(deadline) {
        Ok(()) => runner.join().expect("scenario panicked"),
        Err(_) => {
            panic!("async scenario exceeded its {deadline:?} deadline: lost wakeup")
        }
    }
}

/// The acceptance-shaped fleet: one thread holds 1024 concurrently
/// *pending* `remove_async` futures, a producer then feeds exactly that
/// many elements, and every future resolves with a distinct element — no
/// wakeup lost, nothing delivered twice.
#[test]
fn one_thread_drives_1024_pending_removes() {
    with_deadline(Duration::from_secs(60), || {
        const TASKS: usize = 1024;
        let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(4).seed(3).build();
        thread::scope(|s| {
            let mut p = pool.register();
            let h = pool.register();
            let (pend_tx, pend_rx) = mpsc::channel();
            s.spawn(move || {
                let mut fleet = Fleet::new();
                for _ in 0..TASKS {
                    fleet.spawn(h.remove_async());
                }
                // First dispatch round on the empty pool: every task must
                // go pending (waker armed on the notifier), none resolve.
                let completed = fleet.poll_ready(|_, _| {});
                assert_eq!(completed, 0, "nothing to remove yet");
                assert_eq!(fleet.pending(), TASKS, "all futures concurrently pending");
                pend_tx.send(()).expect("producer is waiting");
                let results = fleet.drive_collect();
                let values: BTreeSet<u64> = results
                    .into_iter()
                    .map(|(_, r)| r.expect("every pending future is satisfied"))
                    .collect();
                assert_eq!(values.len(), TASKS, "distinct element per future");
            });
            // Feed only once every future is pending, in small batches so
            // the add-edge wakeups interleave with the fleet's re-polls.
            pend_rx.recv().expect("fleet reported pending");
            for chunk in 0..(TASKS as u64 / 64) {
                p.add_batch(chunk * 64..(chunk + 1) * 64);
                thread::yield_now();
            }
        });
        assert_eq!(pool.total_len(), 0);
    });
}

/// `close()` racing a fleet of pending futures: every future must resolve
/// terminally (`Ok` or `Closed`, never a hang), and every element is
/// either delivered to exactly one future or still countable in the pool
/// (a thief that resolved `Ok` mid-steal banks its surplus — see the
/// `RemoveError::Closed` docs).
#[test]
fn close_races_pending_futures_to_terminal_states() {
    let rounds = if cfg!(debug_assertions) { 40 } else { 120 };
    with_deadline(Duration::from_secs(120), move || {
        const FUTURES: usize = 64;
        const ELEMENTS: u64 = 32;
        for round in 0..rounds {
            let pool: Pool<VecSegment<u64>, LinearSearch> =
                PoolBuilder::new(2).seed(round as u64).build();
            thread::scope(|s| {
                let mut p = pool.register();
                let h = pool.register();
                let pool = &pool;
                s.spawn(move || {
                    let mut fleet = Fleet::new();
                    for _ in 0..FUTURES {
                        fleet.spawn(h.remove_async());
                    }
                    let mut got = 0usize;
                    let mut closed = 0usize;
                    for (_, result) in fleet.drive_collect() {
                        match result {
                            Ok(_) => got += 1,
                            Err(RemoveError::Closed) => closed += 1,
                            Err(err) => panic!("unexpected terminal state: {err}"),
                        }
                    }
                    assert_eq!(got + closed, FUTURES, "every future resolved terminally");
                    assert_eq!(
                        got as u64 + pool.total_len() as u64,
                        ELEMENTS,
                        "round {round}: delivered + residue conserves the adds"
                    );
                });
                // The race: the adds and the close land while the fleet is
                // mid-drive, in whatever interleaving this round produces.
                p.add_batch(0..ELEMENTS);
                pool.close();
            });
        }
    });
}

/// The keyed close/poll race with per-key futures: key-scoped wakeups and
/// the key-scoped drained check must still resolve every future, and keys
/// never cross.
#[test]
fn keyed_close_races_key_scoped_futures() {
    let rounds = if cfg!(debug_assertions) { 30 } else { 90 };
    with_deadline(Duration::from_secs(120), move || {
        const PER_KEY: usize = 16;
        const ADDS_PER_KEY: u64 = 8;
        for round in 0..rounds {
            let pool: KeyedPool<u8, u64> = KeyedPool::new(2);
            thread::scope(|s| {
                let mut p = pool.register();
                let h = pool.register();
                let pool = &pool;
                s.spawn(move || {
                    let mut fleet = Fleet::new();
                    for i in 0..2 * PER_KEY {
                        fleet.spawn(h.remove_key_async((i % 2) as u8));
                    }
                    let mut got = [0u64; 2];
                    let mut closed = 0usize;
                    for (id, result) in fleet.drive_collect() {
                        match result {
                            Ok(v) => {
                                assert_eq!((v % 2) as u8, (id % 2) as u8, "keys never cross");
                                got[id % 2] += 1;
                            }
                            Err(RemoveError::Closed) => closed += 1,
                            Err(err) => panic!("unexpected terminal state: {err}"),
                        }
                    }
                    assert_eq!(
                        got[0] + got[1] + closed as u64,
                        2 * PER_KEY as u64,
                        "round {round}: every future resolved terminally"
                    );
                    for key in 0u8..2 {
                        assert_eq!(
                            got[key as usize] + pool.key_len(&key) as u64,
                            ADDS_PER_KEY,
                            "round {round}: key {key} conserved"
                        );
                    }
                });
                for v in 0..2 * ADDS_PER_KEY {
                    p.add((v % 2) as u8, v);
                }
                pool.close();
            });
        }
    });
}

/// `_timeout` futures resolve terminally on a quiet pool: with fewer
/// elements than futures, the element-holders resolve `Ok` and every
/// remaining future times out (the fleet's tick sweep drives the in-poll
/// deadline checks — no timer wheel anywhere).
#[test]
fn timeouts_resolve_every_pending_future() {
    with_deadline(Duration::from_secs(60), || {
        const FUTURES: usize = 32;
        const ELEMENTS: u64 = 16;
        let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(2).build();
        let mut p = pool.register();
        let h = pool.register();
        p.add_batch(0..ELEMENTS);
        let mut fleet = Fleet::new();
        for _ in 0..FUTURES {
            fleet.spawn(h.remove_timeout_async(Duration::from_millis(50)));
        }
        let results = fleet.drive_collect();
        let ok = results.iter().filter(|(_, r)| r.is_ok()).count();
        let timed_out = results.iter().filter(|(_, r)| *r == Err(RemoveError::Timeout)).count();
        assert_eq!(ok as u64, ELEMENTS, "every element satisfied one future");
        assert_eq!(timed_out, FUTURES - ELEMENTS as usize, "the rest timed out");
        assert_eq!(pool.total_len(), 0);
    });
}

/// Dropping pending futures withdraws their waker registrations: the pool
/// stays fully usable afterwards (no stale waker is ever invoked, no
/// waiter count leaks to confuse `notify_all`'s fast path).
#[test]
fn dropped_pending_futures_leave_the_pool_live() {
    with_deadline(Duration::from_secs(60), || {
        let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(2).build();
        let mut p = pool.register();
        let h = pool.register();
        {
            let mut fleet = Fleet::new();
            for _ in 0..256 {
                fleet.spawn(h.remove_async());
            }
            assert_eq!(fleet.poll_ready(|_, _| {}), 0, "all pending on the empty pool");
            // The fleet (and all 256 registered wakers) drops here.
        }
        // A fresh blocking consumer and a fresh future must both still
        // see the add edge.
        p.add(1);
        assert_eq!(block_on(h.remove_async()), Ok(1));
        thread::scope(|s| {
            let mut c = pool.register();
            s.spawn(move || {
                assert_eq!(c.remove(WaitStrategy::Block), Ok(2));
            });
            p.add(2);
        });
        pool.close();
        assert_eq!(block_on(h.remove_async()), Err(RemoveError::Closed));
    });
}
