//! N×M stress tests for the element segments themselves — the layer between
//! the lock-free primitives (`stress_primitives.rs`) and the whole-pool
//! suites: owner fleets churn `add`/`try_remove` on a segment family while
//! thief fleets run the two-phase `steal_half` → `add_bulk` transfer
//! between family members, under hard watchdog deadlines.
//!
//! Run for every element segment — the mutex deque, the block segment, the
//! fully lock-free `LfSegment`, and the sharded `LaneSegment` over both —
//! the driver asserts the two properties that survive any interleaving:
//!
//! * **conservation** — globally unique values, checksummed: every element
//!   added is consumed or still resident exactly once, so loss and
//!   duplication (an ABA'd queue block, a double-counted occupancy
//!   reservation, a lane sweep racing a deposit) both shift the sum;
//! * **termination** — steals and removes keep making progress (the
//!   watchdog turns a livelock — e.g. an occupancy reservation that can
//!   never be honored, or a lane sweep forever skipping a "busy" lane —
//!   into a fast failure instead of a hung CI job).
//!
//! CI runs this file under `--release` behind a hard `timeout`, like the
//! primitive stress suite: optimized codegen shrinks the race windows the
//! dev profile masks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use cpool::{BlockSegment, LaneSegment, LfSegment, Segment, TransferBatch, VecSegment};

/// Runs `scenario` on its own thread and panics if it does not finish
/// within `deadline` (the lifecycle-test watchdog pattern).
fn with_deadline(deadline: Duration, scenario: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let runner = thread::spawn(move || {
        scenario();
        let _ = tx.send(());
    });
    match rx.recv_timeout(deadline) {
        Ok(()) => runner.join().expect("scenario panicked"),
        Err(_) => panic!("segment stress exceeded its {deadline:?} deadline: livelock"),
    }
}

const SEGMENTS: usize = 3;
const OWNERS: usize = 3;
const THIEVES: usize = 3;
const PER_OWNER: u64 = 20_000;

/// Values owner `o` adds: globally unique and nonzero, so duplication
/// shifts the checksum just as surely as loss.
fn values_of(o: usize) -> impl Iterator<Item = u64> {
    let base = o as u64 * PER_OWNER;
    (base..base + PER_OWNER).map(|v| v + 1)
}

fn expected_checksum() -> u64 {
    (0..OWNERS).flat_map(values_of).sum()
}

/// The generic fleet: `OWNERS` threads churn add/remove against their home
/// segment of a family while `THIEVES` threads continuously steal from
/// every segment and deposit into their own — elements bounce between
/// family members through the native batch currency the whole time.
fn segment_fleet_conservation<S: Segment<Item = u64>>() {
    let family = S::new_family(SEGMENTS);
    let consumed = AtomicU64::new(0);
    let live_owners = AtomicU64::new(OWNERS as u64);
    thread::scope(|s| {
        for o in 0..OWNERS {
            let (family, consumed, live_owners) = (&family, &consumed, &live_owners);
            s.spawn(move || {
                let home = &family[o % SEGMENTS];
                let mut sum = 0u64;
                for (i, v) in values_of(o).enumerate() {
                    home.add(v);
                    // Every other op, take one back — from anywhere in the
                    // family, since a thief may have moved ours.
                    if i % 2 == 0 {
                        for seg in family {
                            if let Some(got) = seg.try_remove() {
                                sum += got;
                                break;
                            }
                        }
                    }
                    if i % 1024 == 0 {
                        thread::yield_now();
                    }
                }
                consumed.fetch_add(sum, Ordering::Relaxed);
                live_owners.fetch_sub(1, Ordering::Release);
            });
        }
        for t in 0..THIEVES {
            let (family, live_owners) = (&family, &live_owners);
            s.spawn(move || {
                let mut rounds = 0usize;
                loop {
                    let victim = &family[(t + rounds) % SEGMENTS];
                    let target = &family[(t + rounds + 1) % SEGMENTS];
                    let batch = victim.steal_half();
                    // Deposit through the native currency — the emptied
                    // container recycles inside the family.
                    target.add_bulk(batch);
                    rounds += 1;
                    if live_owners.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    if rounds.is_multiple_of(64) {
                        thread::yield_now();
                    }
                }
            });
        }
    });
    // Settle the books single-threaded: residue + consumed == pushed.
    let mut residue = 0u64;
    for seg in &family {
        for v in seg.drain_all().into_vec() {
            residue += v;
        }
        assert!(seg.is_empty(), "drain_all leaves the segment empty");
        assert_eq!(seg.len(), 0, "occupancy agrees with emptiness at quiescence");
    }
    assert_eq!(
        consumed.load(Ordering::Relaxed) + residue,
        expected_checksum(),
        "every added value must be consumed or resident exactly once"
    );
}

#[test]
fn vec_segment_fleet_conservation() {
    with_deadline(Duration::from_secs(120), segment_fleet_conservation::<VecSegment<u64>>);
}

#[test]
fn block_segment_fleet_conservation() {
    with_deadline(Duration::from_secs(120), segment_fleet_conservation::<BlockSegment<u64>>);
}

#[test]
fn lf_segment_fleet_conservation() {
    with_deadline(Duration::from_secs(120), segment_fleet_conservation::<LfSegment<u64>>);
}

#[test]
fn lane_over_vec_fleet_conservation() {
    with_deadline(
        Duration::from_secs(120),
        segment_fleet_conservation::<LaneSegment<VecSegment<u64>, 4>>,
    );
}

#[test]
fn lane_over_lf_fleet_conservation() {
    with_deadline(
        Duration::from_secs(120),
        segment_fleet_conservation::<LaneSegment<LfSegment<u64>, 2>>,
    );
}

#[test]
fn lane_over_block_fleet_conservation() {
    with_deadline(
        Duration::from_secs(120),
        segment_fleet_conservation::<LaneSegment<BlockSegment<u64>, 2>>,
    );
}

/// The lane-sweep regression, concurrent edition: a producer with one fixed
/// affinity funnels everything into a single lane while thieves whose home
/// lanes all differ steal continuously. If the sweep (or the summed
/// occupancy probe) could skip a lane holding real elements, the thieves
/// would never collect the full checksum and the watchdog would fire.
#[test]
fn lane_sweep_never_skips_a_loaded_lane() {
    with_deadline(Duration::from_secs(120), || {
        let seg: LaneSegment<VecSegment<u64>, 4> = LaneSegment::new();
        let total: u64 = (1..=50_000u64).sum();
        let stolen = AtomicU64::new(0);
        thread::scope(|s| {
            let (seg, stolen) = (&seg, &stolen);
            s.spawn(move || {
                for v in 1..=50_000u64 {
                    seg.add(v);
                }
            });
            for _ in 0..THIEVES {
                s.spawn(move || {
                    // Thieves run until the full checksum is accounted for:
                    // termination itself is the property under test.
                    while stolen.load(Ordering::Acquire) < total {
                        let batch = seg.steal_half();
                        let mut sum = 0u64;
                        for v in batch.into_vec() {
                            sum += v;
                        }
                        if sum == 0 {
                            thread::yield_now();
                        } else {
                            stolen.fetch_add(sum, Ordering::AcqRel);
                        }
                    }
                });
            }
        });
        assert_eq!(stolen.load(Ordering::Relaxed), total);
        assert!(seg.is_empty());
    });
}

/// Same regression for the lock-free segment: occupancy is the primary
/// counter, so a counted element must always be poppable — thieves and a
/// single remover must jointly account for every value.
#[test]
fn lf_occupancy_never_strands_elements() {
    with_deadline(Duration::from_secs(120), || {
        let seg: LfSegment<u64> = LfSegment::new();
        let total: u64 = (1..=50_000u64).sum();
        let taken = AtomicU64::new(0);
        thread::scope(|s| {
            let (seg, taken) = (&seg, &taken);
            s.spawn(move || {
                for v in 1..=50_000u64 {
                    seg.add(v);
                }
            });
            for t in 0..THIEVES {
                s.spawn(move || {
                    while taken.load(Ordering::Acquire) < total {
                        let sum: u64 = if t == 0 {
                            seg.try_remove().unwrap_or(0)
                        } else {
                            seg.steal_half().into_iter().sum()
                        };
                        if sum == 0 {
                            thread::yield_now();
                        } else {
                            taken.fetch_add(sum, Ordering::AcqRel);
                        }
                    }
                });
            }
        });
        assert_eq!(taken.load(Ordering::Relaxed), total);
        assert_eq!(seg.len(), 0);
    });
}
