//! N×M stress tests for the hand-rolled lock-free primitives in
//! `crossbeam-queue` (and the `FreeList` built on them), run under hard
//! watchdog deadlines.
//!
//! The vendored crate's own unit tests check ordering and small concurrent
//! interleavings; these tests run real producer/consumer fleets long
//! enough for preemption to land inside every CAS window — mid-push
//! between claiming a slot index and setting its WRITE bit, mid-pop
//! between unhooking a Treiber head and parking the node on the spares
//! list — and assert the two properties that survive any interleaving:
//!
//! * **termination** — no lost update can strand a spinning peer (the
//!   watchdog turns a livelock into a test failure instead of a hung CI
//!   job), and
//! * **conservation** — every value pushed is popped exactly once
//!   (checksums catch both loss and duplication, the two faces of an ABA
//!   bug).
//!
//! CI also runs this file under `--release` behind a hard `timeout`:
//! optimized codegen shrinks the race windows the dev profile masks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use cpool::transfer::FreeList;
use crossbeam_queue::{ArrayQueue, SegQueue, Stack};

/// Runs `scenario` on its own thread and panics if it does not finish
/// within `deadline` (the lifecycle-test watchdog pattern: the property
/// under test is termination, so a deadlock must fail fast, not hang CI).
fn with_deadline(deadline: Duration, scenario: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let runner = thread::spawn(move || {
        scenario();
        let _ = tx.send(());
    });
    match rx.recv_timeout(deadline) {
        Ok(()) => runner.join().expect("scenario panicked"),
        Err(_) => panic!("primitive stress exceeded its {deadline:?} deadline: livelock"),
    }
}

const PRODUCERS: usize = 4;
const CONSUMERS: usize = 4;
const PER_PRODUCER: u64 = 30_000;

/// Values `producer` pushes: globally unique, so duplication shifts the
/// checksum just as surely as loss.
fn values_of(producer: usize) -> impl Iterator<Item = u64> {
    let base = producer as u64 * PER_PRODUCER;
    (base..base + PER_PRODUCER).map(|v| v + 1) // +1: zero would hide in a sum
}

fn expected_checksum() -> u64 {
    (0..PRODUCERS).flat_map(values_of).sum()
}

/// N producers push disjoint value ranges while M consumers pop until the
/// producers finish and the structure drains; `push`/`pop` are the
/// structure's own operations, threaded through closures so one driver
/// covers all three primitives.
fn mpmc_conservation(push: impl Fn(u64) + Sync, pop: impl Fn() -> Option<u64> + Sync) {
    let live_producers = AtomicU64::new(PRODUCERS as u64);
    let consumed = AtomicU64::new(0);
    thread::scope(|s| {
        for p in 0..PRODUCERS {
            let (push, live_producers) = (&push, &live_producers);
            s.spawn(move || {
                for v in values_of(p) {
                    push(v);
                    if v.is_multiple_of(1024) {
                        thread::yield_now();
                    }
                }
                live_producers.fetch_sub(1, Ordering::Release);
            });
        }
        for _ in 0..CONSUMERS {
            let (pop, live_producers, consumed) = (&pop, &live_producers, &consumed);
            s.spawn(move || {
                let mut sum = 0u64;
                loop {
                    match pop() {
                        Some(v) => sum += v,
                        // Consumers may quit while peers still drain (or
                        // even while elements linger after the last
                        // producer's count hits zero); the residue sweep
                        // below settles the books single-threaded.
                        None if live_producers.load(Ordering::Acquire) == 0 => break,
                        None => thread::yield_now(),
                    }
                }
                consumed.fetch_add(sum, Ordering::Relaxed);
            });
        }
    });
    // Anything the consumers' exits raced past is still inside.
    let mut residue = 0u64;
    while let Some(v) = pop() {
        residue += v;
    }
    assert_eq!(
        consumed.load(Ordering::Relaxed) + residue,
        expected_checksum(),
        "every pushed value must be popped exactly once"
    );
}

#[test]
fn seg_queue_mpmc_conservation_under_stress() {
    with_deadline(Duration::from_secs(120), || {
        let q = SegQueue::new();
        mpmc_conservation(|v| q.push(v), || q.pop());
    });
}

#[test]
fn treiber_stack_mpmc_conservation_under_stress() {
    with_deadline(Duration::from_secs(120), || {
        let stack = Stack::new();
        mpmc_conservation(|v| stack.push(v), || stack.pop());
    });
}

#[test]
fn array_queue_mpmc_conservation_under_stress() {
    with_deadline(Duration::from_secs(120), || {
        // Deliberately smaller than the total element count: producers hit
        // the full path and must wait for consumers, so the stamp-based
        // full/empty detection runs under real backpressure.
        let q = ArrayQueue::new(256);
        mpmc_conservation(
            |v| {
                let mut v = v;
                while let Err(back) = q.push(v) {
                    v = back;
                    thread::yield_now();
                }
            },
            || q.pop(),
        );
    });
}

/// The production free list under churn: `put` may *drop* beyond the cap,
/// so conservation here means "never invent a container" — takes can
/// never outnumber puts — and the cache bound holds at quiescence.
#[test]
fn free_list_churn_bounded_and_terminates() {
    with_deadline(Duration::from_secs(120), || {
        const CAP: usize = 64;
        let list: FreeList<u64> = FreeList::new(CAP);
        let takes = AtomicU64::new(0);
        let puts = AtomicU64::new(0);
        thread::scope(|s| {
            for t in 0..(PRODUCERS + CONSUMERS) {
                let (list, takes, puts) = (&list, &takes, &puts);
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        if (i + t as u64).is_multiple_of(3) {
                            if list.take().is_some() {
                                takes.fetch_add(1, Ordering::Relaxed);
                            }
                        } else {
                            list.put(i);
                            puts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let cached = list.cached() as u64;
        assert!(cached as usize <= CAP, "cache bound violated: {cached} > {CAP}");
        assert!(
            takes.load(Ordering::Relaxed) + cached <= puts.load(Ordering::Relaxed),
            "successful takes + residue cannot exceed puts (puts beyond the cap drop)"
        );
    });
}
