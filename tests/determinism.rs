//! Virtual-time determinism: the whole experiment pipeline — pool, search
//! policies, workloads, scheduler — must be a pure function of the spec.
//! This is the property that lets the repo reproduce the paper bit-for-bit
//! on any host.

use cpool::prelude::*;
use cpool::PolicyKind;
use harness::run::{run_experiment, run_single_trial};
use harness::spec::{Engine, ExperimentSpec, SegmentKind};
use numa_sim::{LatencyModel, SimScheduler, SimTiming, Topology};
use workload::{Arrangement, JobMix, Workload};

fn base(policy: PolicyKind, workload: Workload) -> ExperimentSpec {
    ExperimentSpec::paper(policy, workload).scaled(8, 1_000, 2)
}

/// Two identical runs produce identical metrics, for every policy × workload
/// class.
#[test]
fn identical_specs_reproduce_bit_for_bit() {
    let workloads = [
        Workload::RandomMix { mix: JobMix::from_percent(30) },
        Workload::RandomMix { mix: JobMix::from_percent(70) },
        Workload::ProducerConsumer { producers: 3, arrangement: Arrangement::Contiguous },
        Workload::ProducerConsumer { producers: 3, arrangement: Arrangement::Balanced },
    ];
    for policy in PolicyKind::ALL {
        for workload in &workloads {
            let spec = base(policy, workload.clone());
            let a = run_single_trial(&spec, 0);
            let b = run_single_trial(&spec, 0);
            assert_eq!(a.merged.adds, b.merged.adds, "{policy}/{workload}");
            assert_eq!(a.merged.removes, b.merged.removes, "{policy}/{workload}");
            assert_eq!(a.merged.steals, b.merged.steals, "{policy}/{workload}");
            assert_eq!(
                a.merged.segments_examined, b.merged.segments_examined,
                "{policy}/{workload}"
            );
            assert_eq!(a.merged.elements_stolen, b.merged.elements_stolen, "{policy}/{workload}");
            assert_eq!(a.makespan_ns, b.makespan_ns, "{policy}/{workload}");
            assert_eq!(a.final_sizes, b.final_sizes, "{policy}/{workload}");
        }
    }
}

/// Per-process statistics (not just the merge) reproduce exactly.
#[test]
fn per_process_stats_reproduce() {
    let spec = base(
        PolicyKind::Tree,
        Workload::ProducerConsumer { producers: 2, arrangement: Arrangement::Balanced },
    );
    let a = run_single_trial(&spec, 1);
    let b = run_single_trial(&spec, 1);
    assert_eq!(a.per_proc.len(), b.per_proc.len());
    for (pa, pb) in a.per_proc.iter().zip(&b.per_proc) {
        assert_eq!(pa.adds, pb.adds);
        assert_eq!(pa.removes, pb.removes);
        assert_eq!(pa.steals, pb.steals);
        assert_eq!(pa.add_ns, pb.add_ns);
        assert_eq!(pa.remove_ns, pb.remove_ns);
    }
}

/// Changing the master seed changes the interleaving (the RNG flows through).
#[test]
fn different_seeds_give_different_runs() {
    let mut a_spec =
        base(PolicyKind::Random, Workload::RandomMix { mix: JobMix::from_percent(40) });
    let mut b_spec = a_spec.clone();
    a_spec.seed = 7;
    b_spec.seed = 8;
    let a = run_single_trial(&a_spec, 0);
    let b = run_single_trial(&b_spec, 0);
    assert!(
        a.merged.adds != b.merged.adds
            || a.makespan_ns != b.makespan_ns
            || a.merged.segments_examined != b.merged.segments_examined,
        "seeds must matter"
    );
}

/// The latency model scales the virtual makespan but not the op counts.
#[test]
fn latency_model_scales_time_not_counts() {
    let spec_fast = base(PolicyKind::Linear, Workload::RandomMix { mix: JobMix::from_percent(20) });
    let mut spec_slow = spec_fast.clone();
    spec_slow.engine = Engine::Sim(LatencyModel::butterfly().with_remote_delay_us(100));

    let fast = run_single_trial(&spec_fast, 0);
    let slow = run_single_trial(&spec_slow, 0);

    assert_eq!(fast.merged.ops(), slow.merged.ops());
    assert!(
        slow.makespan_ns > fast.makespan_ns,
        "added remote delay must lengthen virtual time: {} vs {}",
        slow.makespan_ns,
        fast.makespan_ns
    );
}

/// Averaged experiment results are deterministic end to end.
#[test]
fn run_experiment_reproduces() {
    let spec = base(
        PolicyKind::Tree,
        Workload::ProducerConsumer { producers: 4, arrangement: Arrangement::Contiguous },
    );
    let a = run_experiment(&spec);
    let b = run_experiment(&spec);
    assert_eq!(a.summary.steal_fraction.mean, b.summary.steal_fraction.mean);
    assert_eq!(a.summary.avg_op_us.mean, b.summary.avg_op_us.mean);
    assert_eq!(a.summary.makespan_ms.mean, b.summary.makespan_ms.mean);
}

/// The blocking `remove(WaitStrategy::Spin)` retry loop is deterministic
/// under the virtual-time engine: two identical runs — batched production,
/// blocking consumption, terminal abort at the end — yield identical
/// logical statistics, makespans, and final segment sizes.
#[test]
fn blocking_remove_spin_is_deterministic_under_sim_timing() {
    #[allow(clippy::type_complexity)]
    fn run() -> (u64, u64, u64, u64, u64, u64, Vec<usize>) {
        let procs = 4;
        let scheduler =
            SimScheduler::new(procs, LatencyModel::butterfly(), Topology::identity(procs));
        let timing: SimTiming = scheduler.timing();
        let pool: Pool<VecSegment<u64>, LinearSearch, SimTiming> =
            PoolBuilder::new(procs).seed(11).timing(timing).build();
        pool.fill_evenly_with(40, |i| i as u64);
        let handles: Vec<_> = (0..procs).map(|_| pool.register()).collect();
        std::thread::scope(|s| {
            for (w, mut h) in handles.into_iter().enumerate() {
                let scheduler = &scheduler;
                s.spawn(move || {
                    let me = h.proc_id();
                    scheduler.start(me);
                    if w % 2 == 0 {
                        // Half the processes produce in one batch.
                        h.add_batch((0..30u64).map(|i| 1_000 + i));
                    }
                    // Everyone consumes until the terminal drained abort:
                    // Spin pauses do nothing, so virtual time only advances
                    // through charged accesses — fully reproducible.
                    while h.remove(WaitStrategy::Spin).is_ok() {}
                    drop(h);
                    scheduler.finish(me);
                });
            }
        });
        let merged = pool.stats().merged();
        (
            merged.adds,
            merged.removes,
            merged.steals,
            merged.aborted_removes,
            merged.segments_examined,
            scheduler.makespan(),
            pool.segment_sizes(),
        )
    }
    let a = run();
    let b = run();
    assert_eq!(a, b, "blocking Spin removes must reproduce bit-for-bit");
    assert_eq!(a.1, 40 + 2 * 30, "every element was consumed exactly once");
    assert!(a.3 >= 4, "every process ended on a terminal abort");
}

/// Both counting-segment kinds run the full pipeline deterministically.
#[test]
fn atomic_and_locked_segments_both_deterministic() {
    for segment in [SegmentKind::LockedCounter, SegmentKind::AtomicCounter] {
        let mut spec =
            base(PolicyKind::Linear, Workload::RandomMix { mix: JobMix::from_percent(30) });
        spec.segment = segment;
        let a = run_single_trial(&spec, 0);
        let b = run_single_trial(&spec, 0);
        assert_eq!(a.makespan_ns, b.makespan_ns, "{segment}");
        assert_eq!(a.merged.steals, b.merged.steals, "{segment}");
    }
}
