//! Smoke test: every example must build *and run to completion* so the
//! `examples/` directory cannot silently rot.
//!
//! `cargo test` always compiles the package's examples; this test finds the
//! built binaries next to the test executable and runs each one. The
//! example list is discovered from `examples/*.rs`, so a newly added
//! example is covered automatically.

use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

/// `target/<profile>/examples`, located relative to this test binary
/// (`target/<profile>/deps/<test>-<hash>`).
fn built_examples_dir() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary has a path");
    dir.pop(); // the test binary itself
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir.join("examples")
}

/// Example names, from the `examples/*.rs` sources.
fn example_names() -> Vec<String> {
    let sources = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut names: Vec<String> = std::fs::read_dir(sources)
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let path = entry.expect("readable directory entry").path();
            (path.extension().is_some_and(|ext| ext == "rs"))
                .then(|| path.file_stem().expect("stem").to_string_lossy().into_owned())
        })
        .collect();
    names.sort();
    names
}

#[test]
fn every_example_runs_to_completion() {
    let dir = built_examples_dir();
    let names = example_names();
    assert!(!names.is_empty(), "no examples found — directory moved?");
    for name in &names {
        let bin = dir.join(name);
        let bin = if bin.exists() { bin } else { dir.join(format!("{name}.exe")) };
        assert!(
            bin.exists(),
            "example `{name}` was not built at {} — run a plain `cargo test` \
             (which always builds examples) rather than a filtered target selection",
            bin.display(),
        );
        let start = Instant::now();
        let output = Command::new(&bin).output().expect("example binary is executable");
        assert!(
            output.status.success(),
            "example `{name}` exited with {:?}:\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stderr),
        );
        eprintln!("example `{name}` ok in {:?}", start.elapsed());
    }
}
