//! Application-level integration: the §4.4 tic-tac-toe study wired through
//! pools, baselines, and the virtual-time scheduler.

use baselines::{GlobalQueue, GlobalStack, LockFreeQueue, PoolWorkList};
use cpool::{NullTiming, PolicyKind};
use numa_sim::{LatencyModel, SimScheduler, SimTiming, Topology};
use ttt::board::Board;
use ttt::minimax::minimax;
use ttt::parallel::{expand_parallel, ExpansionConfig, WorkItem};

fn fast_cfg(depth: u8) -> ExpansionConfig {
    ExpansionConfig { depth, eval_work_ns: 0, expand_work_ns: 0, batch_leaves: true }
}

fn null_timing() -> NullTiming {
    NullTiming::new()
}

/// Every work-list implementation yields the same decision as sequential
/// minimax: the parallel decomposition is list-agnostic.
#[test]
fn every_work_list_matches_sequential_minimax() {
    let seq = minimax(&Board::new(), 2);

    let stack: GlobalStack<WorkItem> = GlobalStack::new();
    let queue: GlobalQueue<WorkItem> = GlobalQueue::new();
    let lockfree: LockFreeQueue<WorkItem> = LockFreeQueue::new();

    for (name, result) in [
        ("stack", expand_parallel(&stack, 4, &fast_cfg(2), &null_timing(), None)),
        ("queue", expand_parallel(&queue, 4, &fast_cfg(2), &null_timing(), None)),
        ("lockfree", expand_parallel(&lockfree, 4, &fast_cfg(2), &null_timing(), None)),
    ] {
        assert_eq!(result.score, seq.score, "{name}");
        assert_eq!(result.best_move, seq.best_move, "{name}");
        assert_eq!(result.leaves, 64 * 63, "{name}");
    }

    for policy in PolicyKind::ALL {
        let pool: PoolWorkList<WorkItem> = PoolWorkList::new(4, policy, null_timing(), 5);
        let result = expand_parallel(&pool, 4, &fast_cfg(2), &null_timing(), None);
        assert_eq!(result.score, seq.score, "pool/{policy}");
        assert_eq!(result.best_move, seq.best_move, "pool/{policy}");
    }
}

/// Worker count does not change the answer, only the schedule.
#[test]
fn worker_count_is_transparent() {
    let baseline = {
        let list: GlobalStack<WorkItem> = GlobalStack::new();
        expand_parallel(&list, 1, &fast_cfg(2), &null_timing(), None)
    };
    for workers in [2, 3, 8] {
        let list: GlobalStack<WorkItem> = GlobalStack::new();
        let r = expand_parallel(&list, workers, &fast_cfg(2), &null_timing(), None);
        assert_eq!(r.score, baseline.score, "{workers} workers");
        assert_eq!(r.best_move, baseline.best_move, "{workers} workers");
        assert_eq!(r.leaves, baseline.leaves, "{workers} workers");
    }
}

/// Under the virtual-time scheduler the expansion yields a makespan, and
/// more workers yield a shorter one (the speedup the paper measures).
#[test]
fn virtual_time_expansion_speeds_up() {
    let cfg = ExpansionConfig {
        depth: 2,
        eval_work_ns: 100_000,
        expand_work_ns: 10_000,
        batch_leaves: true,
    };
    let mut makespans = Vec::new();
    for workers in [1usize, 2, 4] {
        let scheduler =
            SimScheduler::new(workers, LatencyModel::butterfly(), Topology::identity(workers));
        let timing: SimTiming = scheduler.timing();
        // Spin, not the Block default: a thread parked on an OS primitive
        // would deadlock the virtual-time token hand-off.
        let pool: PoolWorkList<WorkItem, SimTiming> = PoolWorkList::with_wait(
            workers,
            PolicyKind::Linear,
            timing.clone(),
            3,
            cpool::WaitStrategy::Spin,
        );
        let r = expand_parallel(&pool, workers, &cfg, &timing, Some(&scheduler));
        let makespan = r.makespan_ns.expect("virtual-time run has a makespan");
        makespans.push((workers, makespan));
    }
    let t1 = makespans[0].1 as f64;
    for &(workers, t) in &makespans[1..] {
        let speedup = t1 / t as f64;
        assert!(
            speedup > workers as f64 * 0.5,
            "{workers} workers speedup {speedup:.2} too low (makespans {makespans:?})"
        );
    }
}

/// Virtual-time expansion is deterministic: same makespan twice.
#[test]
fn virtual_time_expansion_is_deterministic() {
    let run = || {
        let workers = 3;
        let scheduler =
            SimScheduler::new(workers, LatencyModel::butterfly(), Topology::identity(workers));
        let timing: SimTiming = scheduler.timing();
        let pool: PoolWorkList<WorkItem, SimTiming> = PoolWorkList::with_wait(
            workers,
            PolicyKind::Tree,
            timing.clone(),
            42,
            cpool::WaitStrategy::Spin,
        );
        let cfg = ExpansionConfig {
            depth: 2,
            eval_work_ns: 50_000,
            expand_work_ns: 5_000,
            batch_leaves: true,
        };
        let r = expand_parallel(&pool, workers, &cfg, &timing, Some(&scheduler));
        (r.makespan_ns, r.score, r.best_move, r.leaves)
    };
    assert_eq!(run(), run());
}

/// The pool keeps most work local: when every pulled item generates children
/// into the worker's own segment (the paper's game-tree pattern, "there is
/// no reason to share nodes with another process until the local collection
/// has been depleted"), steals are a small fraction of removes.
#[test]
fn pool_work_list_stays_local() {
    let workers = 4;
    let pool: PoolWorkList<WorkItem> =
        PoolWorkList::new(workers, PolicyKind::Linear, null_timing(), 17);
    // Unbatched: all 64 + 64*63 positions flow through the pool, and each
    // depth-1 item deposits its 63 children locally.
    let cfg = ExpansionConfig { depth: 2, eval_work_ns: 0, expand_work_ns: 0, batch_leaves: false };
    let r = expand_parallel(&pool, workers, &cfg, &null_timing(), None);
    assert_eq!(r.leaves, 64 * 63);
    let stats = pool.pool().stats().merged();
    assert_eq!(stats.removes, 64 + 64 * 63);
    assert!(
        stats.steals * 5 < stats.removes,
        "work generation keeps segments warm: {} steals vs {} removes",
        stats.steals,
        stats.removes
    );
}
