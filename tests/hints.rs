//! Integration tests for the hint extension (`cpool::hints`) at the pool
//! level: donations flow end to end, conserve elements, and improve the
//! sparse producer/consumer workloads the paper's §5 asks about.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use concurrent_pools::prelude::*;
use cpool::PolicyKind;
use harness::run::run_experiment;
use harness::spec::ExperimentSpec;
use workload::{Arrangement, Workload};

/// A producer's add is delivered directly to a consumer whose search has
/// posted on the hint board. The producer paces itself on the waiting
/// count, so every element is offered while the consumer is starving.
#[test]
fn donation_satisfies_a_searcher() {
    let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(2).hints(true).build();

    let consumed = AtomicU64::new(0);
    thread::scope(|s| {
        let mut consumer = pool.register();
        let consumed = &consumed;
        s.spawn(move || {
            let mut got = 0;
            while got < 100 {
                if let Ok(v) = consumer.remove(WaitStrategy::Yield) {
                    consumed.fetch_add(v, Ordering::Relaxed);
                    got += 1;
                }
            }
            assert!(
                consumer.stats().hinted_removes > 0,
                "a starved consumer received at least one donation"
            );
        });

        let mut producer = pool.register();
        let board = pool.hint_board().expect("hints enabled");
        s.spawn(move || {
            for v in 1..=100u64 {
                // Wait for the consumer to post (it does so after one
                // fruitless search lap), then offer the element.
                while !board.has_waiters() {
                    thread::yield_now();
                }
                producer.add(v);
            }
        });
    });

    assert_eq!(consumed.load(Ordering::Relaxed), (1..=100u64).sum());
    let merged = pool.stats().merged();
    assert_eq!(merged.adds, 100);
    assert_eq!(merged.removes, 100);
    assert!(merged.donated_adds > 0, "donations happened");
    assert_eq!(
        merged.donated_adds, merged.hinted_removes,
        "every donation was received exactly once"
    );
    assert_eq!(pool.total_len(), 0);
}

/// Hints never break conservation, for any policy, under heavy churn.
#[test]
fn hinted_pool_conserves_unique_values() {
    for kind in PolicyKind::ALL {
        let n = 4;
        let per = 2_000u64;
        let pool: Pool<VecSegment<u64>, DynPolicy> =
            PoolBuilder::new(n).seed(7).hints(true).build_policy(kind);

        let sum = AtomicU64::new(0);
        thread::scope(|s| {
            for w in 0..n as u64 {
                let mut h = pool.register();
                let sum = &sum;
                s.spawn(move || {
                    for i in 0..per {
                        h.add(w * per + i);
                        if i % 2 == 0 {
                            if let Ok(v) = h.try_remove() {
                                sum.fetch_add(v, Ordering::Relaxed);
                            }
                        }
                    }
                    let mut got = h.stats().removes;
                    while got < per {
                        if let Ok(v) = h.remove(WaitStrategy::Yield) {
                            sum.fetch_add(v, Ordering::Relaxed);
                            got += 1;
                        }
                    }
                });
            }
        });

        let total = n as u64 * per;
        assert_eq!(pool.total_len(), 0, "{kind}");
        assert_eq!(
            sum.load(Ordering::Relaxed),
            (0..total).sum::<u64>(),
            "{kind}: every value consumed exactly once"
        );
    }
}

/// A raced delivery (donation arriving while the search already found a
/// steal victim) is banked, not lost: total element flow still balances.
#[test]
fn raced_deliveries_are_banked() {
    // Tight loop maximizing search/add races.
    let pool: Pool<LockedCounter, DynPolicy> =
        PoolBuilder::new(3).seed(13).hints(true).build_policy(PolicyKind::Random);
    let removed = AtomicU64::new(0);
    let added = AtomicU64::new(0);
    thread::scope(|s| {
        for w in 0..3u64 {
            let mut h = pool.register();
            let (removed, added) = (&removed, &added);
            s.spawn(move || {
                for i in 0..5_000u64 {
                    if (i + w) % 3 == 0 {
                        h.add(());
                        added.fetch_add(1, Ordering::Relaxed);
                    } else if h.try_remove().is_ok() {
                        removed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let residue = added.load(Ordering::Relaxed) - removed.load(Ordering::Relaxed);
    assert_eq!(pool.total_len() as u64, residue, "no element lost in delivery races");
}

/// Under the virtual-time engine, hints pay off exactly where the paper's
/// §5 wondered: extreme starvation. At one producer (15 consumers fighting
/// over a trickle) donations cut both probes and modelled completion time
/// by large factors; at five producers searches never complete a fruitless
/// lap, nobody posts, and the hinted pool behaves identically to the plain
/// one.
#[test]
fn hints_improve_sparse_producer_consumer() {
    let spec_for = |producers: usize| {
        let mut spec = ExperimentSpec::paper(
            PolicyKind::Linear,
            Workload::ProducerConsumer { producers, arrangement: Arrangement::Contiguous },
        );
        spec.total_ops = 2_000;
        spec.trials = 3;
        spec
    };

    // Extreme starvation: hints dominate.
    let base = spec_for(1);
    let without = run_experiment(&base);
    let with = run_experiment(&base.clone().with_hints());
    assert!(
        with.trials[0].merged.donated_adds > 100,
        "the starved consumers attract donations: {}",
        with.trials[0].merged.donated_adds
    );
    let probes_without = without.trials[0].merged.segments_examined;
    let probes_with = with.trials[0].merged.segments_examined;
    assert!(
        probes_with * 2 < probes_without,
        "donations short-circuit the long-tail searches: \
         {probes_with} vs {probes_without} probes"
    );
    assert!(
        with.summary.makespan_ms.mean * 1.5 < without.summary.makespan_ms.mean,
        "hints shorten the modelled run: {} vs {} ms",
        with.summary.makespan_ms.mean,
        without.summary.makespan_ms.mean
    );

    // Mild sparseness: searches succeed within a lap, nobody posts, and the
    // hinted pool degrades to exactly the plain pool.
    let easy = spec_for(5);
    let without = run_experiment(&easy);
    let with = run_experiment(&easy.clone().with_hints());
    assert_eq!(with.trials[0].merged.donated_adds, 0, "no fruitless laps, no donations");
    assert_eq!(
        with.trials[0].merged.segments_examined, without.trials[0].merged.segments_examined,
        "hints are a structural no-op when steals succeed"
    );
    assert_eq!(with.trials[0].makespan_ns, without.trials[0].makespan_ns);
}

/// Hinted runs stay deterministic under the virtual-time engine.
#[test]
fn hinted_runs_are_deterministic() {
    let mut spec = ExperimentSpec::paper(
        PolicyKind::Tree,
        Workload::ProducerConsumer { producers: 2, arrangement: Arrangement::Balanced },
    )
    .with_hints();
    spec.total_ops = 1_000;
    spec.trials = 2;
    let a = run_experiment(&spec);
    let b = run_experiment(&spec);
    for (ta, tb) in a.trials.iter().zip(&b.trials) {
        assert_eq!(ta.merged.donated_adds, tb.merged.donated_adds);
        assert_eq!(ta.merged.hinted_removes, tb.merged.hinted_removes);
        assert_eq!(ta.makespan_ns, tb.makespan_ns);
    }
}

/// Hints off ⇒ the donation counters stay zero (no accidental activation).
#[test]
fn hints_default_off() {
    let pool: Pool<LockedCounter, LinearSearch> = PoolBuilder::new(2).build();
    assert!(pool.hint_board().is_none());
    let mut a = pool.register();
    let mut b = pool.register();
    thread::scope(|s| {
        s.spawn(move || {
            for _ in 0..100 {
                a.add(());
            }
        });
        s.spawn(move || {
            let mut got = 0;
            while got < 50 {
                if b.remove(WaitStrategy::Yield).is_ok() {
                    got += 1;
                }
            }
        });
    });
    let merged = pool.stats().merged();
    assert_eq!(merged.donated_adds, 0);
    assert_eq!(merged.hinted_removes, 0);
}
