//! Trace-pipeline integration: the segment-size traces behind Figures 3–6,
//! including a qualitative check of the paper's *bunching* phenomenon.

use cpool::{PolicyKind, SegIdx, TraceKind};
use harness::run::run_single_trial;
use harness::spec::ExperimentSpec;
use workload::{Arrangement, Role, Workload};

fn traced_spec(policy: PolicyKind, producers: usize, arrangement: Arrangement) -> ExperimentSpec {
    let mut spec =
        ExperimentSpec::paper(policy, Workload::ProducerConsumer { producers, arrangement });
    spec.total_ops = 3_000;
    spec.trials = 1;
    spec.record_trace = true;
    spec
}

/// Trace events are time-ordered and every steal pairs a `StealFrom` with a
/// `StealInto` at the same virtual timestamp.
#[test]
fn steals_appear_as_paired_events() {
    let spec = traced_spec(PolicyKind::Linear, 5, Arrangement::Contiguous);
    let trial = run_single_trial(&spec, 0);
    let events = trial.traces.expect("tracing enabled");
    assert!(!events.is_empty());
    assert!(events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns), "time-ordered");

    let froms: Vec<_> = events.iter().filter(|e| e.kind == TraceKind::StealFrom).collect();
    let intos: Vec<_> = events.iter().filter(|e| e.kind == TraceKind::StealInto).collect();
    assert_eq!(froms.len(), intos.len(), "steals record both sides");
    assert_eq!(froms.len() as u64, trial.merged.steals, "trace agrees with stats");
    for (f, i) in froms.iter().zip(&intos) {
        assert_eq!(f.t_ns, i.t_ns, "the two sides share one timestamp");
        assert_eq!(f.proc, i.proc, "and one thief");
        assert_ne!(f.seg, i.seg, "thief and victim differ");
    }
}

/// Consumers' home segments stay near-empty; producers' segments hold the
/// inventory. (The visual signature of Figures 3 and 5.)
#[test]
fn producers_hold_the_inventory() {
    let spec = traced_spec(PolicyKind::Linear, 5, Arrangement::Contiguous);
    let workload = spec.workload.clone();
    let trial = run_single_trial(&spec, 0);
    let events = trial.traces.expect("tracing enabled");

    let roles: Vec<Role> =
        (0..16).map(|p| workload.role_of(p, 16).expect("producer/consumer workload")).collect();

    // Average recorded size per segment.
    let mut sums = [0u64; 16];
    let mut counts = [0u64; 16];
    for e in &events {
        sums[e.seg.index()] += u64::from(e.len);
        counts[e.seg.index()] += 1;
    }
    let avg = |s: usize| sums[s] as f64 / counts[s].max(1) as f64;
    let producer_avg: f64 = (0..16).filter(|&s| roles[s] == Role::Producer).map(avg).sum::<f64>()
        / roles.iter().filter(|r| **r == Role::Producer).count() as f64;
    let consumer_avg: f64 = (0..16).filter(|&s| roles[s] == Role::Consumer).map(avg).sum::<f64>()
        / roles.iter().filter(|r| **r == Role::Consumer).count() as f64;

    assert!(
        producer_avg > consumer_avg,
        "producers accumulate, consumers drain: producer_avg={producer_avg:.1} \
         consumer_avg={consumer_avg:.1}"
    );
}

/// §4.2, the bunching effect: with *contiguous* producers under linear
/// search, steals concentrate on the first producers in ring order, and the
/// last producer is stolen from rarely (the paper: "producer 4 is never
/// stolen from"). Balancing spreads the steals out.
#[test]
fn contiguous_producers_bunch_linear_consumers() {
    let producers = 5;

    let steals_per_producer = |arrangement: Arrangement| -> Vec<u64> {
        let spec = traced_spec(PolicyKind::Linear, producers, arrangement);
        let workload = spec.workload.clone();
        let trial = run_single_trial(&spec, 0);
        let events = trial.traces.expect("tracing enabled");
        let producer_segs: Vec<usize> =
            (0..16).filter(|&p| workload.role_of(p, 16) == Some(Role::Producer)).collect();
        producer_segs
            .iter()
            .map(|&seg| {
                events
                    .iter()
                    .filter(|e| e.kind == TraceKind::StealFrom && e.seg == SegIdx::new(seg))
                    .count() as u64
            })
            .collect()
    };

    let contiguous = steals_per_producer(Arrangement::Contiguous);
    let balanced = steals_per_producer(Arrangement::Balanced);

    // Bunching: the most-hit producer absorbs a large share under the
    // contiguous arrangement, and the last producer sees the least traffic.
    let total_c: u64 = contiguous.iter().sum();
    let last = *contiguous.last().expect("five producers");
    let max_c = *contiguous.iter().max().expect("five producers");
    assert!(total_c > 0, "contiguous producers are stolen from");
    assert!(
        last * 2 <= max_c.max(1),
        "ring order shields the last producer: per-producer steals {contiguous:?}"
    );

    // Balanced arrangement: every producer participates.
    assert!(
        balanced.iter().all(|&s| s > 0),
        "balanced producers all get stolen from: {balanced:?}"
    );
}

/// The trace captures exactly one event per local op and two per steal:
/// `events == adds + local removes + 2·steals == adds + removes + steals`.
#[test]
fn trace_event_count_matches_stats() {
    let spec = traced_spec(PolicyKind::Tree, 5, Arrangement::Balanced);
    let trial = run_single_trial(&spec, 0);
    let events = trial.traces.expect("tracing enabled");
    let m = &trial.merged;
    assert_eq!(
        events.len() as u64,
        m.adds + m.removes + m.steals,
        "every operation leaves its trace"
    );
    // An Add event reports the size right after the insert: at least 1.
    assert!(
        events.iter().filter(|e| e.kind == TraceKind::Add).all(|e| e.len >= 1),
        "post-add sizes are positive"
    );
    // Each segment's series is non-empty for a 16-proc producer/consumer run.
    for seg in 0..16 {
        assert!(
            events.iter().any(|e| e.seg == SegIdx::new(seg)),
            "segment {seg} appears in the trace"
        );
    }
}
