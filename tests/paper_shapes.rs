//! End-to-end checks that the pipeline reproduces the *shapes* of the
//! paper's findings at reduced scale (the full-scale regenerations live in
//! the `bench` crate; these run in seconds under `cargo test`).

use cpool::PolicyKind;
use harness::run::run_experiment;
use harness::spec::ExperimentSpec;
use workload::{Arrangement, JobMix, Workload};

fn paper_small(policy: PolicyKind, workload: Workload) -> ExperimentSpec {
    // 16 procs as in the paper, but a smaller budget and fewer trials.
    let mut spec = ExperimentSpec::paper(policy, workload);
    spec.total_ops = 2_000;
    spec.trials = 3;
    spec
}

/// §4.1: "no steals are performed with a sufficient mix ... the performance
/// generally levels off when more than 50% of the operations are adds", and
/// sparse mixes are much slower than sufficient ones.
#[test]
fn sparse_mixes_steal_and_slow_down() {
    let sparse = run_experiment(&paper_small(
        PolicyKind::Tree,
        Workload::RandomMix { mix: JobMix::from_percent(20) },
    ));
    let sufficient = run_experiment(&paper_small(
        PolicyKind::Tree,
        Workload::RandomMix { mix: JobMix::from_percent(80) },
    ));

    assert!(
        sparse.summary.steal_fraction.mean > 0.05,
        "sparse mix steals: {}",
        sparse.summary.steal_fraction.mean
    );
    assert!(
        sufficient.summary.steal_fraction.mean < 0.01,
        "sufficient mix almost never steals: {}",
        sufficient.summary.steal_fraction.mean
    );
    assert!(
        sparse.summary.avg_op_us.mean > sufficient.summary.avg_op_us.mean,
        "sparse ops cost more: {} vs {} µs",
        sparse.summary.avg_op_us.mean,
        sufficient.summary.avg_op_us.mean
    );
}

/// §4.1: "the producer/consumer model forces consumers to steal all of the
/// elements they use, regardless of the ratio of adds and removes" — steals
/// exist even at a sufficient measured mix.
#[test]
fn producer_consumer_steals_at_every_mix() {
    for producers in [4usize, 8, 12] {
        let result = run_experiment(&paper_small(
            PolicyKind::Linear,
            Workload::ProducerConsumer { producers, arrangement: Arrangement::Balanced },
        ));
        assert!(
            result.summary.steals.mean > 0.0,
            "{producers} producers: consumers can only eat by stealing"
        );
    }
}

/// §4.2 / Figure 7 (errata): balancing the producers increases the number of
/// elements stolen per steal.
#[test]
fn balancing_increases_elements_per_steal() {
    let producers = 5; // the paper's Figures 3-6 configuration
    let contiguous = run_experiment(&paper_small(
        PolicyKind::Tree,
        Workload::ProducerConsumer { producers, arrangement: Arrangement::Contiguous },
    ));
    let balanced = run_experiment(&paper_small(
        PolicyKind::Tree,
        Workload::ProducerConsumer { producers, arrangement: Arrangement::Balanced },
    ));

    let unb = contiguous.summary.elements_per_steal.mean;
    let bal = balanced.summary.elements_per_steal.mean;
    assert!(
        bal > unb,
        "balanced arrangement steals more per steal: balanced={bal:.2} unbalanced={unb:.2}"
    );
}

/// §4.3: the tree algorithm examines fewer segments per steal than linear or
/// random under a steal-heavy workload.
#[test]
fn tree_examines_fewer_segments() {
    let workload = Workload::RandomMix { mix: JobMix::from_percent(30) };
    let mut per_policy = Vec::new();
    for policy in PolicyKind::ALL {
        let result = run_experiment(&paper_small(policy, workload.clone()));
        per_policy.push((policy, result.summary.segments_per_steal.mean));
    }
    let tree = per_policy.iter().find(|(p, _)| *p == PolicyKind::Tree).unwrap().1;
    let linear = per_policy.iter().find(|(p, _)| *p == PolicyKind::Linear).unwrap().1;
    let random = per_policy.iter().find(|(p, _)| *p == PolicyKind::Random).unwrap().1;
    assert!(
        tree <= linear && tree <= random,
        "tree probes fewest segments: tree={tree:.2} linear={linear:.2} random={random:.2}"
    );
}

/// §4.3: under the Butterfly model the tree's *operation times* are
/// nevertheless no better than the simple algorithms for sparse mixes
/// (tree-node overhead is comparable to segment access time).
#[test]
fn tree_is_not_faster_despite_fewer_probes() {
    let workload = Workload::RandomMix { mix: JobMix::from_percent(30) };
    let tree = run_experiment(&paper_small(PolicyKind::Tree, workload.clone()));
    let linear = run_experiment(&paper_small(PolicyKind::Linear, workload));
    // "the operation times in the tree search algorithm did not compare
    // favorably" — allow 5% tolerance for noise at this reduced scale.
    assert!(
        tree.summary.avg_op_us.mean >= linear.summary.avg_op_us.mean * 0.95,
        "tree={} µs should not beat linear={} µs",
        tree.summary.avg_op_us.mean,
        linear.summary.avg_op_us.mean
    );
}

/// §3.2: with 0% adds the initial 320 elements drain and the rest of the
/// budget aborts through the livelock gate — the run must terminate.
#[test]
fn zero_percent_adds_drains_and_aborts() {
    let result = run_experiment(&paper_small(
        PolicyKind::Linear,
        Workload::RandomMix { mix: JobMix::from_percent(0) },
    ));
    let trial = &result.trials[0];
    assert_eq!(trial.merged.adds, 0);
    assert_eq!(trial.merged.removes, 320, "exactly the initial fill drained");
    assert!(trial.merged.aborted_removes > 0);
    assert!(trial.final_sizes.iter().all(|&s| s == 0));
}

/// 100% adds: no removes, no steals, no aborts; elements pile up.
#[test]
fn all_adds_never_steals() {
    let result = run_experiment(&paper_small(
        PolicyKind::Random,
        Workload::RandomMix { mix: JobMix::from_percent(100) },
    ));
    let trial = &result.trials[0];
    assert_eq!(trial.merged.removes, 0);
    assert_eq!(trial.merged.steals, 0);
    assert_eq!(trial.merged.aborted_removes, 0);
    assert_eq!(trial.final_sizes.iter().sum::<usize>() as u64, 320 + trial.merged.adds);
}

/// The measured mix of a producer/consumer run tracks the producer fraction
/// but drifts upward, because producers' cheap local adds claim more of the
/// shared §3.4 operation budget than consumers' slow searches — the same
/// drift that makes the paper's 1–4-producer runs all measure ≈47% adds.
#[test]
fn measured_mix_tracks_producer_fraction() {
    let eight = run_experiment(&paper_small(
        PolicyKind::Tree,
        Workload::ProducerConsumer { producers: 8, arrangement: Arrangement::Balanced },
    ));
    let mix8 = eight.summary.measured_mix.mean;
    assert!(
        (0.5..0.8).contains(&mix8),
        "8 of 16 producers: sufficient mix, drifted above 50%, got {mix8:.3}"
    );

    // The paper's hallmark: sparse producer counts bunch together near (but
    // below) 50% because consumers burn budget on searches.
    let mut sparse_mixes = Vec::new();
    for producers in [2usize, 3, 4] {
        let r = run_experiment(&paper_small(
            PolicyKind::Tree,
            Workload::ProducerConsumer { producers, arrangement: Arrangement::Balanced },
        ));
        sparse_mixes.push(r.summary.measured_mix.mean);
    }
    for &mix in &sparse_mixes {
        assert!(
            (0.35..0.5).contains(&mix),
            "sparse producer counts measure just below 50%: {sparse_mixes:?}"
        );
    }
    let spread = sparse_mixes.iter().cloned().fold(f64::MIN, f64::max)
        - sparse_mixes.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        spread < 0.05,
        "2-4 producers yield essentially the same measured mix: {sparse_mixes:?}"
    );
}
