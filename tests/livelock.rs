//! Livelock-breaker integration tests: the §3.2 termination rule under real
//! thread interleavings. These tests must *terminate* — that is the point.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

use concurrent_pools::prelude::*;
use cpool::{NodeStoreKind, PolicyKind};

/// All-consumer swarm on an empty pool: every policy must abort (no hang).
#[test]
fn empty_pool_consumers_all_abort() {
    for kind in PolicyKind::ALL {
        let n = 8;
        let pool: Pool<LockedCounter, DynPolicy> =
            PoolBuilder::new(n).node_store(NodeStoreKind::Locked).build_policy(kind);
        let aborted = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..n {
                let mut h = pool.register();
                let aborted = &aborted;
                s.spawn(move || {
                    for _ in 0..50 {
                        if h.try_remove() == Err(RemoveError::Aborted) {
                            aborted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(aborted.load(Ordering::Relaxed), 8 * 50, "{kind}: every remove aborted");
    }
}

/// A lone producer keeps consumers alive: the gate only fires once the
/// producer has deregistered and the pool is drained.
#[test]
fn consumers_wait_for_a_slow_producer() {
    let n = 4;
    let total = 600u64;
    let pool: Pool<LockedCounter, LinearSearch> = PoolBuilder::new(n).build();
    let consumed = AtomicU64::new(0);

    thread::scope(|s| {
        let mut producer = pool.register();
        s.spawn(move || {
            for i in 0..total {
                producer.add(());
                if i % 64 == 0 {
                    // A slow producer: consumers briefly see an empty pool
                    // while it is still registered, so they must keep trying.
                    thread::sleep(Duration::from_millis(1));
                }
            }
        });
        for _ in 0..n - 1 {
            let mut c = pool.register();
            let consumed = &consumed;
            s.spawn(move || loop {
                // The blocking remove retries transient aborts itself; an
                // Err here means the pool was drained while every process
                // searched — check whether the whole run is finished.
                match c.remove(WaitStrategy::Yield) {
                    Ok(()) => {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        if consumed.load(Ordering::Relaxed) == total {
                            break;
                        }
                        thread::yield_now();
                    }
                }
            });
        }
    });
    assert_eq!(consumed.load(Ordering::Relaxed), total, "every element was consumed");
    assert_eq!(pool.total_len(), 0);
}

/// Starvation: blocking `remove` on a drained pool, with every registered
/// process searching at once, returns the abort outcome — it must not hang
/// and must not burn its whole attempt budget (the drained check makes the
/// first abort terminal).
#[test]
fn blocking_remove_on_drained_pool_aborts_instead_of_hanging() {
    for kind in PolicyKind::ALL {
        let n = 8;
        let pool: Pool<LockedCounter, DynPolicy> = PoolBuilder::new(n).build_policy(kind);
        let aborted = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..n {
                let mut h = pool.register();
                let aborted = &aborted;
                s.spawn(move || {
                    for strategy in [WaitStrategy::Spin, WaitStrategy::Yield, WaitStrategy::Park] {
                        if h.remove(strategy) == Err(RemoveError::Aborted) {
                            aborted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(aborted.load(Ordering::Relaxed), 8 * 3, "{kind}: every blocking remove aborted");
        let merged = pool.stats().merged();
        assert!(
            merged.aborted_removes < 8 * 3 * WaitStrategy::DEFAULT_ATTEMPTS as u64,
            "{kind}: terminal aborts fire well before the budget ({} attempts)",
            merged.aborted_removes
        );
    }
}

/// An aborted remove leaves the pool fully usable: elements added afterwards
/// are found by the previously-aborted process.
#[test]
fn abort_is_recoverable() {
    let pool: Pool<LockedCounter, DynPolicy> = PoolBuilder::new(2).build_policy(PolicyKind::Tree);
    let mut a = pool.register();
    assert_eq!(a.try_remove(), Err(RemoveError::Aborted), "lone searcher aborts");
    a.add(());
    assert!(a.try_remove().is_ok(), "pool works after the abort");
}

/// The gate never counts a process that is between operations as searching:
/// a producer mid-add must suppress the abort of concurrent searchers.
#[test]
fn search_gate_stress_terminates() {
    // Pathological churn: producers flicker between adding a burst and
    // consuming it all back. Consumers hammer remove. The run must finish
    // (no livelock, no lost wakeups) with all elements accounted for.
    let n = 8;
    let pool: Pool<AtomicCounter, DynPolicy> =
        PoolBuilder::new(n).seed(99).build_policy(PolicyKind::Random);
    let stop = AtomicBool::new(false);
    let produced = AtomicU64::new(0);
    let consumed = AtomicU64::new(0);

    thread::scope(|s| {
        for w in 0..n {
            let mut h = pool.register();
            let (stop, produced, consumed) = (&stop, &produced, &consumed);
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    if !(i + w as u64).is_multiple_of(3) {
                        h.add(());
                        produced.fetch_add(1, Ordering::Relaxed);
                    } else if h.try_remove().is_ok() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                    if i > 20_000 {
                        stop.store(true, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let residue = produced.load(Ordering::Relaxed) - consumed.load(Ordering::Relaxed);
    assert_eq!(pool.total_len() as u64, residue, "gate churn never lost an element");
}
