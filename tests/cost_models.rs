//! Cross-model determinism: the cost model is *observation only*.
//!
//! The statically-dispatched cost model changes what a shared-memory access
//! costs, never what the pool does. A seeded, single-process (hence
//! schedule-free) workload must therefore produce bit-identical logical
//! statistics — adds, removes, steals, aborts, segments examined — whether
//! the pool is built over the generic [`NullTiming`], the
//! [`DynTiming`](cpool::DynTiming) (`Arc<dyn Timing>`) adapter, or the
//! virtual-time [`SimTiming`]. This pins the generic-dispatch refactor
//! against behavioral drift between the monomorphized and dyn-dispatched
//! hot paths.

use std::sync::Arc;

use cpool::{DynTiming, LinearSearch, NullTiming, Pool, PoolBuilder, ProcId, Timing, VecSegment};
use numa_sim::{LatencyModel, SimScheduler, Topology};

/// The logical outcome of a run: everything the paper's figures are built
/// from, except the (model-dependent) latencies.
#[derive(PartialEq, Eq, Debug)]
struct Logical {
    adds: u64,
    removes: u64,
    steals: u64,
    aborted_removes: u64,
    elements_stolen: u64,
    segments_examined: u64,
    final_sizes: Vec<usize>,
}

/// Runs the same seeded add/remove mix on one process over four segments.
///
/// The op sequence comes from a fixed xorshift stream, so it is identical
/// for every cost model; a single process means no scheduling freedom
/// either. Removes outnumber adds, so the run drains the initial fill,
/// steals across segments, and finally aborts — exercising every exit path
/// of `try_remove`.
fn run_workload<T: Timing>(pool: &Pool<VecSegment<u64>, LinearSearch, T>) -> Logical {
    pool.fill_evenly_with(64, |i| i as u64);
    let mut handle = pool.register();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..512u64 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        if state.is_multiple_of(3) {
            handle.add(i);
        } else {
            let _ = handle.try_remove();
        }
    }
    let stats = handle.stats();
    Logical {
        adds: stats.adds,
        removes: stats.removes,
        steals: stats.steals,
        aborted_removes: stats.aborted_removes,
        elements_stolen: stats.elements_stolen,
        segments_examined: stats.segments_examined,
        final_sizes: pool.segment_sizes(),
    }
}

fn pool_with<T: Timing>(timing: T) -> Pool<VecSegment<u64>, LinearSearch, T> {
    PoolBuilder::new(4).seed(7).timing(timing).build()
}

#[test]
fn generic_dyn_and_sim_models_agree_logically() {
    // Generic static dispatch: the monomorphized, uninstrumented pool.
    let generic = run_workload(&pool_with(NullTiming::new()));

    // The same model behind the dyn-dispatch adapter.
    let adapter: DynTiming = Arc::new(NullTiming::new());
    let dyn_dispatch = run_workload(&pool_with(adapter));

    // The virtual-time engine (Butterfly latencies), under the scheduler's
    // start/finish protocol.
    let scheduler = SimScheduler::new(1, LatencyModel::butterfly(), Topology::identity(1));
    let sim_pool = pool_with(scheduler.timing());
    scheduler.start(ProcId::new(0));
    let sim = run_workload(&sim_pool);
    scheduler.finish(ProcId::new(0));

    assert_eq!(generic, dyn_dispatch, "dyn adapter must not change pool behavior");
    assert_eq!(generic, sim, "virtual-time model must not change pool behavior");

    // Sanity: the workload exercised the interesting paths at all.
    assert!(generic.steals > 0, "workload must steal: {generic:?}");
    assert!(generic.aborted_removes > 0, "workload must abort: {generic:?}");
    assert!(generic.segments_examined > 0, "workload must search: {generic:?}");
}

#[test]
fn generic_null_timing_is_repeatable() {
    let a = run_workload(&pool_with(NullTiming::new()));
    let b = run_workload(&pool_with(NullTiming::new()));
    assert_eq!(a, b, "single-process seeded workload is deterministic");
}
