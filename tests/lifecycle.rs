//! Pool-lifecycle integration tests: the close/park race under load, and
//! the drain-before-`Closed` ordering guarantee.
//!
//! Every scenario runs under a hard watchdog deadline — the property these
//! tests defend is *termination*: a single lost wakeup between a consumer
//! checking its wake conditions and parking, or between `close()` flipping
//! the flag and signalling, strands a parked thread forever and trips the
//! watchdog. CI runs this file under `--release` too (optimized codegen
//! shrinks the race windows the dev profile masks).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use concurrent_pools::prelude::*;
use cpool::KeyedPool;

/// Runs `scenario` on its own thread and panics if it does not finish
/// within `deadline` — the close/park deadlock detector.
fn with_deadline(deadline: Duration, scenario: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let runner = thread::spawn(move || {
        scenario();
        let _ = tx.send(());
    });
    match rx.recv_timeout(deadline) {
        Ok(()) => runner.join().expect("scenario panicked"),
        Err(_) => {
            panic!("lifecycle scenario exceeded its {deadline:?} deadline: close/park deadlock")
        }
    }
}

/// N producers × M blocking consumers with a `close()` at the end: the run
/// must terminate (no deadlock on the close/park race) and conserve every
/// element — whatever interleaving the scheduler picks between the last
/// adds, the parked waits, and the close.
#[test]
fn producers_consumers_close_terminates_and_conserves() {
    with_deadline(Duration::from_secs(60), || {
        let producers = 4;
        let consumers = 4;
        let per_producer = 2_000u64;
        let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(4).seed(11).build();
        let produced_total = producers as u64 * per_producer;
        let received = AtomicU64::new(0);
        let live_producers = AtomicU64::new(producers as u64);

        thread::scope(|s| {
            for p in 0..producers {
                let mut h = pool.register();
                let live_producers = &live_producers;
                let pool = &pool;
                s.spawn(move || {
                    for i in 0..per_producer {
                        let v = p as u64 * per_producer + i;
                        // Mix singles and small batches so the notify paths
                        // of both add flavors face the park race.
                        if i % 7 == 0 {
                            h.add_batch([v]);
                        } else {
                            h.add(v);
                        }
                        if i % 64 == 0 {
                            thread::yield_now();
                        }
                    }
                    // The last producer out closes the pool: the lifecycle
                    // signal races directly against consumers parking. The
                    // handle drops only after the close, so no window
                    // exists in which every producer has deregistered with
                    // the close still pending — consumers would (correctly,
                    // but not what this test asserts) read that window as
                    // the §3.2 terminal state.
                    if live_producers.fetch_sub(1, Ordering::AcqRel) == 1 {
                        pool.close();
                    }
                    drop(h);
                });
            }
            for _ in 0..consumers {
                let mut h = pool.register();
                let received = &received;
                s.spawn(move || {
                    let err = loop {
                        match h.remove(WaitStrategy::Block) {
                            Ok(_) => {
                                received.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(err) => break err,
                        }
                    };
                    assert_eq!(err, RemoveError::Closed, "close released this consumer");
                });
            }
        });

        assert_eq!(received.load(Ordering::Relaxed), produced_total, "every element delivered");
        assert_eq!(pool.total_len(), 0);
        assert!(pool.is_closed());
    });
}

/// Elements added before `close()` are all delivered before any consumer
/// observes `Closed`: the close drains, it does not drop.
#[test]
fn drained_then_closed_ordering() {
    with_deadline(Duration::from_secs(60), || {
        let elements = 500u64;
        let consumers = 3;
        let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(2).build();
        let received = AtomicU64::new(0);

        thread::scope(|s| {
            // Register the producer before any consumer thread can run: a
            // consumer alone on the gate would (correctly) read its own
            // solitude as the §3.2 terminal state.
            let mut p = pool.register();
            for _ in 0..consumers {
                let mut h = pool.register();
                let received = &received;
                s.spawn(move || {
                    loop {
                        match h.remove(WaitStrategy::Block) {
                            Ok(_) => {
                                received.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(err) => {
                                // The ordering guarantee: Closed is only
                                // observable once no pre-close element is
                                // reachable — nothing is dropped. (No
                                // segment-emptiness assertion here: a peer
                                // mid-steal may bank its in-flight batch
                                // right after this observation and drain
                                // it itself — see the RemoveError::Closed
                                // docs. The post-scope count asserts that
                                // every element was delivered to someone.)
                                assert_eq!(err, RemoveError::Closed);
                                break;
                            }
                        }
                    }
                });
            }
            s.spawn(move || {
                p.add_batch(0..elements);
                p.close();
            });
        });

        assert_eq!(received.load(Ordering::Relaxed), elements);
        assert_eq!(pool.total_len(), 0);
    });
}

/// The keyed frontend under the same close/park stress: per-key blocking
/// consumers, producers spread across keys, close at the end.
#[test]
fn keyed_close_park_race_terminates() {
    with_deadline(Duration::from_secs(60), || {
        let keys = 3u8;
        let per_key = 800u64;
        let pool: KeyedPool<u8, u64> = KeyedPool::new(4);
        let received = AtomicU64::new(0);

        thread::scope(|s| {
            let mut p = pool.register(); // before consumers: see above
            for key in 0..keys {
                let mut h = pool.register();
                let received = &received;
                s.spawn(move || {
                    let err = loop {
                        match h.remove_key(&key, WaitStrategy::Block) {
                            Ok(v) => {
                                assert_eq!((v % keys as u64) as u8, key);
                                received.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(err) => break err,
                        }
                    };
                    assert_eq!(err, RemoveError::Closed);
                });
            }
            let pool = &pool;
            s.spawn(move || {
                for v in 0..keys as u64 * per_key {
                    p.add((v % keys as u64) as u8, v);
                    if v % 128 == 0 {
                        thread::yield_now();
                    }
                }
                // Close before the handle drops (see the plain-pool test).
                pool.close();
                drop(p);
            });
        });

        assert_eq!(received.load(Ordering::Relaxed), keys as u64 * per_key);
        assert_eq!(pool.total_len(), 0);
    });
}

/// `remove_timeout` under contention: waiters that time out leave the pool
/// coherent, and a later add still finds a live pool.
#[test]
fn timeouts_leave_the_pool_live() {
    with_deadline(Duration::from_secs(60), || {
        let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(2).build();
        let mut waiter = pool.register();
        let mut producer = pool.register();
        assert_eq!(
            waiter.remove_timeout(Duration::from_millis(10)),
            Err(RemoveError::Timeout),
            "quiet pool with a live producer times the wait out"
        );
        producer.add(42);
        assert_eq!(waiter.remove_timeout(Duration::from_millis(200)), Ok(42));
        pool.close();
        assert_eq!(waiter.remove_timeout(Duration::from_millis(200)), Err(RemoveError::Closed));
    });
}
