//! Failure injection and edge-of-contract tests: panicking workers,
//! oversubscription, degenerate pool shapes, and trait-bound guarantees.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

use concurrent_pools::prelude::*;
use cpool::{PolicyKind, SearchGate};

/// A worker that panics mid-run must not wedge the rest of the pool: its
/// handle unwinds, deregisters from the gate, and the survivors still
/// terminate (either by consuming everything or by clean aborts).
#[test]
fn panicking_worker_does_not_wedge_the_gate() {
    for kind in PolicyKind::ALL {
        let n = 4;
        let pool: Pool<LockedCounter, DynPolicy> = PoolBuilder::new(n).seed(3).build_policy(kind);
        pool.fill_evenly(100);

        thread::scope(|s| {
            // The saboteur: removes a few elements, then panics while its
            // handle is live. catch_unwind keeps the scope alive.
            let mut saboteur = pool.register();
            s.spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(move || {
                    let _ = saboteur.try_remove();
                    panic!("injected failure");
                }));
                assert!(result.is_err(), "the panic fired");
            });

            // Honest workers drain the rest.
            for _ in 0..n - 1 {
                let mut h = pool.register();
                s.spawn(move || while h.remove(WaitStrategy::Spin).is_ok() {});
            }
        });

        assert_eq!(pool.total_len(), 0, "{kind}: survivors drained the pool");
        assert_eq!(pool.gate().registered(), 0, "{kind}: gate fully released");
    }
}

/// A panic while *searching* (inside the gate guard) releases the
/// searching count, so other processes' abort conditions stay accurate.
#[test]
fn panic_inside_search_releases_searching_count() {
    let gate = SearchGate::new();
    gate.register();
    gate.register();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _guard = gate.begin_search();
        assert_eq!(gate.searching(), 1);
        panic!("injected");
    }));
    assert!(result.is_err());
    assert_eq!(gate.searching(), 0, "guard dropped during unwind");
    assert!(!gate.all_searching());
}

/// More processes than segments: handles share home segments round-robin
/// and the pool still balances.
#[test]
fn oversubscribed_pool_works() {
    let segments = 3;
    let workers = 10;
    let per = 500u64;
    let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(segments).build();

    thread::scope(|s| {
        for w in 0..workers as u64 {
            let mut h = pool.register();
            s.spawn(move || {
                for i in 0..per {
                    h.add(w * per + i);
                }
                let mut got = 0;
                while got < per {
                    if h.remove(WaitStrategy::Yield).is_ok() {
                        got += 1;
                    }
                }
            });
        }
    });
    assert_eq!(pool.total_len(), 0);
    let merged = pool.stats().merged();
    assert_eq!(merged.adds, workers as u64 * per);
    assert_eq!(merged.removes, workers as u64 * per);
}

/// A single-segment pool degenerates to a mutex-guarded bag but keeps the
/// full API contract.
#[test]
fn single_segment_pool_contract() {
    for kind in PolicyKind::ALL {
        let pool: Pool<VecSegment<u32>, DynPolicy> = PoolBuilder::new(1).build_policy(kind);
        let mut a = pool.register();
        let mut b = pool.register();
        a.add(1);
        b.add(2);
        let mut seen = vec![a.try_remove().unwrap(), b.try_remove().unwrap()];
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2], "{kind}");
    }
}

/// Handles are Send (thread-movable); pools are Send + Sync + Clone.
#[test]
fn concurrency_trait_bounds() {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<Handle<VecSegment<u64>, LinearSearch>>();
    assert_send::<Pool<VecSegment<u64>, TreeSearch>>();
    assert_sync::<Pool<VecSegment<u64>, TreeSearch>>();
    assert_send::<Pool<LockedCounter, RandomSearch>>();
    assert_sync::<Pool<LockedCounter, RandomSearch>>();
    assert_send::<cpool::KeyedPool<u32, String>>();
    assert_sync::<cpool::KeyedPool<u32, String>>();
    assert_send::<cpool::KeyedHandle<u32, String>>();
    assert_send::<RemoveError>();
    assert_sync::<RemoveError>();
}

/// Handles can migrate between threads mid-lifetime (Send, not pinned).
#[test]
fn handle_migrates_across_threads() {
    let pool: Pool<LockedCounter, LinearSearch> = PoolBuilder::new(2).build();
    let mut h = pool.register();
    h.add(());
    let h = thread::spawn(move || {
        h.add(());
        h
    })
    .join()
    .expect("no panic");
    drop(h);
    assert_eq!(pool.total_len(), 2);
    assert_eq!(pool.stats().merged().adds, 2, "stats follow the handle");
}

/// Zero-capacity builders panic loudly rather than misbehaving.
#[test]
fn zero_segment_builder_panics() {
    let result = catch_unwind(|| {
        let _: PoolBuilder<LockedCounter> = PoolBuilder::new(0);
    });
    assert!(result.is_err());
}

/// The pool survives an interleaving where every element is stolen multiple
/// times (relay race: each worker steals from the previous one's segment).
#[test]
fn elements_survive_steal_chains() {
    let n = 6;
    let pool: Pool<VecSegment<u32>, LinearSearch> = PoolBuilder::new(n).build();

    // Worker 0 owns everything initially.
    {
        let mut seeder = pool.register();
        for v in 0..600 {
            seeder.add(v);
        }
    }

    // Each worker steals, banks, and re-adds locally — forcing elements to
    // hop segment to segment.
    let mut all = Vec::new();
    thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let mut h = pool.register();
                s.spawn(move || {
                    let mut mine = Vec::new();
                    while mine.len() < 100 {
                        if let Ok(v) = h.remove(WaitStrategy::Yield) {
                            mine.push(v);
                        }
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            all.extend(handle.join().expect("worker finished"));
        }
    });

    all.sort_unstable();
    assert_eq!(all, (0..600).collect::<Vec<_>>(), "every element exactly once");
}
