//! Offline shim for the `rand` crate (0.8-compatible subset).
//!
//! Implements exactly the surface this workspace uses — `SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer/float ranges,
//! and `Rng::gen_bool` — on a xoshiro256++ generator seeded via splitmix64.
//! Streams are deterministic for a given seed, which is all the workspace's
//! reproducibility story requires. Swap the path dependency for the real
//! crate when a registry is available.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value (high bits of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        sample_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn sample_f64<R: RngCore>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A half-open or inclusive range a value can be drawn from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + sample_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + sample_f64(rng) * (end - start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as the real SmallRng does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u32..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / trials as f64;
        assert!((frac - 0.3).abs() < 0.01, "measured {frac}");
    }

    #[test]
    fn extreme_probabilities_are_exact() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }
}
