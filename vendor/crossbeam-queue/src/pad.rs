//! Cache-line padding so the producer and consumer ends of a queue do not
//! false-share (a minimal stand-in for `crossbeam_utils::CachePadded`).

use std::ops::{Deref, DerefMut};

/// Aligns `T` to 128 bytes: two 64-byte lines, covering the adjacent-line
/// prefetcher on x86-64 and 128-byte lines on some aarch64 parts.
#[derive(Debug, Default)]
#[repr(align(128))]
pub(crate) struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub(crate) fn new(value: T) -> Self {
        CachePadded { value }
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}
