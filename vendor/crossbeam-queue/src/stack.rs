//! An unordered lock-free Treiber stack with a generation-tagged head.
//!
//! The classic Treiber pop is ABA-unsafe: between loading the head node and
//! CASing it off, the node can be popped, recycled, and pushed back — the
//! pointer matches, the CAS succeeds, and the stack is corrupted (the stale
//! `next` the CAS installs may point at a node that is no longer in the
//! list). Two mechanisms close the hole here:
//!
//! * **Generation tags.** The head is a single `AtomicU64` packing a
//!   48-bit node pointer with a 16-bit generation counter that every
//!   successful CAS increments. A pop that raced a pop-repush cycle fails
//!   its CAS on the tag even though the pointer matches. (`Stack::new`
//!   asserts the 48-bit packing actually fits this platform's pointers.)
//! * **Type-stable nodes.** Popped nodes are not freed; they move to an
//!   internal spare-node list (itself a tagged Treiber stack) and are
//!   reused by later pushes, freed only when the `Stack` is dropped. A
//!   stalled pop may therefore read the `next` field of a node it no
//!   longer owns, but never of *freed* memory — and `next` is an
//!   `AtomicPtr`, so the racy read is defined behavior. The node count is
//!   bounded by the stack's high-water mark.
//!
//! Ordering argument: a push writes the value into the node and publishes
//! the node with a `Release` CAS on `head`; the pop that claims the node
//! does so with an `Acquire`-on-success CAS, so the value read happens
//! after the value write. The spare-list hand-off repeats the same pattern
//! for the node structure itself.

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use crate::backoff::Backoff;
use crate::pad::CachePadded;

/// Low 48 bits of a packed head hold the node pointer; the high 16 bits
/// hold the generation tag.
const PTR_MASK: u64 = (1 << 48) - 1;

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    value: UnsafeCell<MaybeUninit<T>>,
}

fn pack<T>(node: *mut Node<T>, tag: u64) -> u64 {
    let addr = node as u64;
    debug_assert_eq!(addr & !PTR_MASK, 0);
    addr | (tag << 48)
}

fn unpack<T>(packed: u64) -> (*mut Node<T>, u64) {
    ((packed & PTR_MASK) as *mut Node<T>, packed >> 48)
}

/// Pushes `node` onto the tagged list at `list`, bumping the generation.
fn push_node<T>(list: &AtomicU64, node: *mut Node<T>) {
    let mut backoff = Backoff::new();
    let mut cur = list.load(Ordering::Relaxed);
    loop {
        let (head, tag) = unpack::<T>(cur);
        // SAFETY: we own `node` until the CAS below succeeds; after that,
        // ownership transfers to the list.
        unsafe { (*node).next.store(head, Ordering::Relaxed) };
        match list.compare_exchange_weak(
            cur,
            pack(node, tag.wrapping_add(1)),
            Ordering::Release,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(c) => {
                cur = c;
                backoff.spin();
            }
        }
    }
}

/// Pops a node from the tagged list at `list`; the caller takes ownership
/// of the returned node.
fn pop_node<T>(list: &AtomicU64) -> Option<*mut Node<T>> {
    let mut backoff = Backoff::new();
    let mut cur = list.load(Ordering::Acquire);
    loop {
        let (head, tag) = unpack::<T>(cur);
        if head.is_null() {
            return None;
        }
        // SAFETY: nodes are type-stable — `head` may have been popped and
        // recycled since we loaded `cur` (the tag CAS below catches that),
        // but it is never freed while the stack is alive, and `next` is
        // atomic, so this read is always defined.
        let next = unsafe { (*head).next.load(Ordering::Relaxed) };
        match list.compare_exchange_weak(
            cur,
            pack(next, tag.wrapping_add(1)),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Some(head),
            Err(c) => {
                cur = c;
                backoff.spin();
            }
        }
    }
}

/// An unbounded lock-free MPMC stack (LIFO), ABA-safe via generation tags.
///
/// API-compatible with [`SegQueue`](crate::SegQueue) minus FIFO order —
/// built for free-list / shell-cache paths where reuse order is
/// irrelevant (LIFO even helps: the hottest container comes back first).
///
/// ```
/// use crossbeam_queue::Stack;
///
/// let s = Stack::new();
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.pop(), Some(2));
/// assert_eq!(s.pop(), Some(1));
/// assert_eq!(s.pop(), None);
/// ```
pub struct Stack<T> {
    head: CachePadded<AtomicU64>,
    spares: CachePadded<AtomicU64>,
    len: AtomicUsize,
    _marker: PhantomData<Box<Node<T>>>,
}

// SAFETY: the stack moves owned `T` values between threads through raw
// nodes; the tagged-head protocol gives each value exactly one reader.
unsafe impl<T: Send> Send for Stack<T> {}
unsafe impl<T: Send> Sync for Stack<T> {}

impl<T> Default for Stack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Stack<T> {
    /// Creates an empty stack.
    ///
    /// # Panics
    ///
    /// Panics if this platform hands out heap pointers wider than 48 bits
    /// (the packed pointer+tag representation would be lossy).
    pub fn new() -> Self {
        let probe = Box::into_raw(Box::new(0u64));
        let fits = probe as u64 & !PTR_MASK == 0;
        // SAFETY: `probe` came from Box::into_raw just above.
        drop(unsafe { Box::from_raw(probe) });
        assert!(fits, "heap pointers exceed 48 bits; tagged-head packing is unavailable");
        Stack {
            head: CachePadded::new(AtomicU64::new(0)),
            spares: CachePadded::new(AtomicU64::new(0)),
            len: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Pushes `value` onto the stack.
    ///
    /// Allocates only when the spare-node cache is empty — i.e. when the
    /// stack grows past its historical high-water mark.
    pub fn push(&self, value: T) {
        let node = match pop_node::<T>(&self.spares) {
            Some(node) => node,
            None => Box::into_raw(Box::new(Node {
                next: AtomicPtr::new(ptr::null_mut()),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })),
        };
        // SAFETY: we own `node` (freshly allocated or claimed from the
        // spare list); nobody reads `value` until push_node publishes it.
        unsafe { (*node).value.get().write(MaybeUninit::new(value)) };
        push_node(&self.head, node);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Pops an element (LIFO order), or `None` if the stack is empty.
    pub fn pop(&self) -> Option<T> {
        let node = pop_node::<T>(&self.head)?;
        // SAFETY: winning the head CAS made us the node's unique owner; the
        // Acquire pairs with the pushing thread's Release, ordering the
        // value write before this read.
        let value = unsafe { (*node).value.get().read().assume_init() };
        push_node(&self.spares, node);
        self.len.fetch_sub(1, Ordering::Relaxed);
        Some(value)
    }

    /// Number of elements currently on the stack (approximate snapshot —
    /// the counter is maintained with relaxed increments around the CAS).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the stack is currently empty (exact at the load of the
    /// head word).
    pub fn is_empty(&self) -> bool {
        unpack::<T>(self.head.load(Ordering::Acquire)).0.is_null()
    }
}

impl<T> Drop for Stack<T> {
    fn drop(&mut self) {
        // Exclusive access: free the live list (dropping values) and the
        // spare list (empty shells).
        unsafe {
            let (mut ptr, _) = unpack::<T>(*self.head.get_mut());
            while !ptr.is_null() {
                let mut node = Box::from_raw(ptr);
                node.value.get_mut().assume_init_drop();
                ptr = *node.next.get_mut();
            }
            let (mut ptr, _) = unpack::<T>(*self.spares.get_mut());
            while !ptr.is_null() {
                let mut node = Box::from_raw(ptr);
                ptr = *node.next.get_mut();
            }
        }
    }
}

impl<T> fmt::Debug for Stack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stack").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lifo_order() {
        let s = Stack::new();
        for i in 0..10 {
            s.push(i);
        }
        for i in (0..10).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn nodes_are_recycled() {
        let s = Stack::new();
        s.push(1);
        let first = unpack::<i32>(s.head.load(Ordering::SeqCst)).0;
        assert_eq!(s.pop(), Some(1));
        s.push(2);
        let second = unpack::<i32>(s.head.load(Ordering::SeqCst)).0;
        assert_eq!(first, second, "push after pop reuses the spare node");
        assert_eq!(s.pop(), Some(2));
    }

    #[test]
    fn aba_pop_race_repush_is_detected() {
        // Reconstructs the classic ABA interleaving deterministically: a
        // "stalled pop" holds a stale head snapshot while the head node is
        // popped, recycled, and pushed back. The pointer matches again but
        // the generation tag does not, so the stalled CAS must fail.
        let s = Stack::new();
        s.push(1u32);
        s.push(2);
        s.push(3);

        // The stalled pop reads the head: node A (value 3), tag t.
        let stale = s.head.load(Ordering::SeqCst);
        let (stale_ptr, _) = unpack::<u32>(stale);
        let stale_next = unsafe { (*stale_ptr).next.load(Ordering::SeqCst) };

        // Meanwhile other threads pop A, pop B, and push twice; the spare
        // list is LIFO, so the second push gets node A back.
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        s.push(4);
        s.push(5);

        let now = s.head.load(Ordering::SeqCst);
        let (now_ptr, _) = unpack::<u32>(now);
        assert_eq!(now_ptr, stale_ptr, "the recycled node is back at the head (the ABA shape)");
        assert_ne!(now, stale, "but the generation tag moved");

        // The stalled pop resumes: with an untagged head its CAS would
        // succeed and install the stale next pointer. Here it must fail.
        let resumed =
            s.head.compare_exchange(stale, pack(stale_next, 0), Ordering::SeqCst, Ordering::SeqCst);
        assert!(resumed.is_err(), "stale CAS against a recycled head must fail");

        // And the stack is still intact.
        assert_eq!(s.pop(), Some(5));
        assert_eq!(s.pop(), Some(4));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn drops_remaining_values_and_spares() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let s = Stack::new();
            for _ in 0..10 {
                s.push(Counted(Arc::clone(&drops)));
            }
            for _ in 0..4 {
                drop(s.pop());
            }
            assert_eq!(drops.load(Ordering::Relaxed), 4);
            // 6 live values + 4 spare nodes outstanding.
        }
        assert_eq!(drops.load(Ordering::Relaxed), 10, "stack drop releases the remainder");
    }

    #[test]
    fn concurrent_multiset_conservation() {
        let s = Stack::new();
        let producers = 4;
        let consumers = 4;
        let per = 2000usize;
        let total = producers * per;
        let seen: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        let taken = AtomicUsize::new(0);
        thread::scope(|scope| {
            for p in 0..producers {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..per {
                        s.push(p * per + i);
                    }
                });
            }
            for _ in 0..consumers {
                let s = &s;
                let seen = &seen;
                let taken = &taken;
                scope.spawn(move || loop {
                    if let Some(v) = s.pop() {
                        seen[v].fetch_add(1, Ordering::Relaxed);
                        if taken.fetch_add(1, Ordering::Relaxed) + 1 == total {
                            return;
                        }
                    } else if taken.load(Ordering::Relaxed) >= total {
                        return;
                    } else {
                        thread::yield_now();
                    }
                });
            }
        });
        for (v, count) in seen.iter().enumerate() {
            assert_eq!(count.load(Ordering::Relaxed), 1, "value {v} popped exactly once");
        }
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
