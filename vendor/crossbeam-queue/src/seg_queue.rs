//! Unbounded lock-free MPMC FIFO queue over linked fixed-size blocks.
//!
//! This follows the crossbeam `SegQueue` design. Elements live in
//! heap-allocated blocks of [`BLOCK_CAP`] slots linked into a list; two
//! global indexes (`head` for poppers, `tail` for pushers) are claimed with
//! CAS, and a per-slot state word coordinates the three hand-offs the
//! algorithm needs:
//!
//! * **writer → reader** (`WRITE`): a pop that claimed index `i` may run
//!   before the push that claimed `i` has stored the value. The reader
//!   spins on the slot's `WRITE` bit; the writer's `fetch_or(WRITE,
//!   Release)` publishes the value store before it.
//! * **reader → reclaimer** (`READ` / `DESTROY`): blocks are freed without
//!   an epoch collector. The pop that claims a block's *last* slot starts a
//!   destruction sweep over the block; any slot whose reader is still
//!   mid-pop gets its `DESTROY` bit set instead, and that straggler — on
//!   seeing `DESTROY` in its own `fetch_or(READ)` — resumes the sweep from
//!   the next slot. Exactly one thread ends up calling `Box::from_raw`.
//! * **installer → everyone** (the boundary index): each block owns `LAP`
//!   consecutive index values — `BLOCK_CAP` real slots plus one reserved
//!   *boundary* value. An index sitting on the boundary means "the next
//!   block is being installed"; pushers and poppers that land there spin
//!   until the installer advances the index past it.
//!
//! Emptiness is decided by comparing the two indexes: both are monotonic
//! and walk the identical index sequence, so `head == tail` observed under
//! a `SeqCst` fence means every claimed slot has been popped.
//!
//! **Block recycling.** The original design frees a fully-consumed block
//! with `Box::from_raw` and allocates a fresh one every `BLOCK_CAP`
//! pushes, so steady-state traffic pays a malloc/free pair per lap. This
//! implementation instead parks spent blocks on an internal
//! generation-tagged Treiber list (the [`crate::Stack`] idiom) and lets
//! `push` draw from it before asking the allocator. Spare blocks are
//! *type-stable*: once a block has entered circulation it is only ever
//! returned to the spare list or handed back to a pusher, never freed
//! until the queue itself drops — which is what makes the lock-free spare
//! list safe to traverse without hazard pointers (a reader chasing a
//! stale `next` can only land on live queue-owned memory; the tagged CAS
//! then rejects the stale head). Memory use is therefore bounded by the
//! queue's high-water mark, exactly like `Stack`'s spare-node cache.

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{self, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use crate::backoff::Backoff;
use crate::pad::CachePadded;

/// Set once the pushing thread has stored the slot's value.
const WRITE: usize = 1;
/// Set once the popping thread has finished reading the slot's value.
const READ: usize = 2;
/// Set by a destruction sweep that found the slot's reader still mid-pop.
const DESTROY: usize = 4;

/// Index values per block: the slots plus one boundary value.
const LAP: usize = 32;
/// Value slots per block.
const BLOCK_CAP: usize = LAP - 1;

struct Slot<T> {
    value: UnsafeCell<MaybeUninit<T>>,
    state: AtomicUsize,
}

impl<T> Slot<T> {
    /// Spins until the pushing thread has written this slot's value.
    fn wait_write(&self) {
        let mut backoff = Backoff::new();
        while self.state.load(Ordering::Acquire) & WRITE == 0 {
            backoff.snooze();
        }
    }
}

struct Block<T> {
    next: AtomicPtr<Block<T>>,
    slots: [Slot<T>; BLOCK_CAP],
}

impl<T> Block<T> {
    fn new() -> Box<Self> {
        // SAFETY: the all-zero bit pattern is valid for every field — a
        // null `AtomicPtr`, zeroed `AtomicUsize` state words (no bits set),
        // and `MaybeUninit<T>` values (uninitialized by definition).
        unsafe { Box::new(MaybeUninit::<Block<T>>::zeroed().assume_init()) }
    }

    /// Spins until the next block has been installed, then returns it.
    fn wait_next(&self) -> *mut Block<T> {
        let mut backoff = Backoff::new();
        loop {
            let next = self.next.load(Ordering::Acquire);
            if !next.is_null() {
                return next;
            }
            backoff.snooze();
        }
    }

    /// Sweeps slots `start..` marking them `DESTROY`, retiring the block
    /// to the spare list if every reader is done; a straggling reader
    /// resumes the sweep.
    ///
    /// The last slot is exempt: its reader is the thread that *initiates*
    /// destruction (with `start == 0`), so it never needs the hand-off.
    ///
    /// # Safety
    ///
    /// `this` must have been claimed in full (all `BLOCK_CAP` slots popped
    /// or being popped), and each slot's pop calls this at most once with
    /// the spare pool owned by the queue the block belongs to.
    unsafe fn destroy(this: *mut Block<T>, start: usize, spares: &SparePool<T>) {
        for i in start..BLOCK_CAP - 1 {
            let slot = unsafe { &(*this).slots[i] };
            // If the reader is still mid-pop, delegate the rest of the
            // sweep to it (it will see DESTROY in its own fetch_or).
            if slot.state.load(Ordering::Acquire) & READ == 0
                && slot.state.fetch_or(DESTROY, Ordering::AcqRel) & READ == 0
            {
                return;
            }
        }
        // Every reader is done; this thread owns the block exclusively and
        // parks it for reuse instead of freeing it.
        unsafe { spares.put(this) };
    }
}

/// Generation tag lives in the top bits of the packed head word.
const SPARE_TAG_SHIFT: u32 = 48;
/// Low bits of the packed word hold the block pointer.
const SPARE_PTR_MASK: u64 = (1 << SPARE_TAG_SHIFT) - 1;

/// A Treiber list of spent blocks, linked through their `next` fields,
/// with an ABA-proof generation tag packed into the head word.
///
/// Blocks parked here are fully reset (zeroed slot states, null `next`)
/// by the exclusive owner *before* publication, so a taker can hand one
/// straight back to `push`. Members are never freed while the queue is
/// live (type-stable memory, see the module docs); the queue's `Drop`
/// walks the list and releases it.
struct SparePool<T> {
    head: AtomicU64,
    /// Approximate population, for diagnostics only (`Relaxed` updates).
    len: AtomicUsize,
    _marker: PhantomData<*mut Block<T>>,
}

// SAFETY: the pool hands whole blocks between threads; a parked block
// carries no live `T` values (every slot was popped before retirement).
unsafe impl<T: Send> Send for SparePool<T> {}
unsafe impl<T: Send> Sync for SparePool<T> {}

impl<T> SparePool<T> {
    fn new() -> Self {
        SparePool { head: AtomicU64::new(0), len: AtomicUsize::new(0), _marker: PhantomData }
    }

    fn pack(ptr: *mut Block<T>, tag: u16) -> u64 {
        (ptr as u64 & SPARE_PTR_MASK) | ((tag as u64) << SPARE_TAG_SHIFT)
    }

    fn unpack(word: u64) -> (*mut Block<T>, u16) {
        ((word & SPARE_PTR_MASK) as *mut Block<T>, (word >> SPARE_TAG_SHIFT) as u16)
    }

    /// Parks `block` for reuse.
    ///
    /// # Safety
    ///
    /// The caller must own `block` exclusively (last reader done, or a
    /// never-published pre-allocation) with every slot's value consumed.
    unsafe fn put(&self, block: *mut Block<T>) {
        // Degrade gracefully on exotic hosts whose heap pointers overflow
        // the 48-bit pack: a block that never enters the list is safe to
        // free outright (that is the original, non-recycling behavior).
        if block as u64 & !SPARE_PTR_MASK != 0 {
            drop(unsafe { Box::from_raw(block) });
            return;
        }
        // Reset under exclusive ownership, before the Release publication
        // below makes the block visible to takers.
        {
            let b = unsafe { &mut *block };
            for slot in &mut b.slots {
                *slot.state.get_mut() = 0;
            }
            *b.next.get_mut() = ptr::null_mut();
        }
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let (old, tag) = Self::unpack(head);
            unsafe { (*block).next.store(old, Ordering::Relaxed) };
            match self.head.compare_exchange_weak(
                head,
                Self::pack(block, tag.wrapping_add(1)),
                Ordering::Release,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(h) => head = h,
            }
        }
    }

    /// Takes a parked block, already reset, or `None` if the list is empty.
    fn take(&self) -> Option<Box<Block<T>>> {
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let (ptr_, tag) = Self::unpack(head);
            if ptr_.is_null() {
                return None;
            }
            // Reading `next` is safe even if `ptr_` was concurrently taken
            // and recirculated: blocks are type-stable (never freed while
            // the queue is live), and the tagged CAS below rejects the
            // stale head so a garbage `next` is never installed.
            let next = unsafe { (*ptr_).next.load(Ordering::Acquire) };
            match self.head.compare_exchange_weak(
                head,
                Self::pack(next, tag.wrapping_add(1)),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    // Clear the link so the block re-enters circulation in
                    // its pristine all-null state.
                    unsafe { (*ptr_).next.store(ptr::null_mut(), Ordering::Relaxed) };
                    return Some(unsafe { Box::from_raw(ptr_) });
                }
                Err(h) => head = h,
            }
        }
    }

    /// Approximate number of parked blocks (diagnostics only).
    fn approx_len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }
}

impl<T> Drop for SparePool<T> {
    fn drop(&mut self) {
        // Exclusive access: free the parked blocks for real.
        let (mut block, _) = Self::unpack(*self.head.get_mut());
        while !block.is_null() {
            let next = unsafe { *(*block).next.get_mut() };
            drop(unsafe { Box::from_raw(block) });
            block = next;
        }
    }
}

/// One end of the queue: the next index to claim and the block it lives in.
struct Position<T> {
    index: AtomicUsize,
    block: AtomicPtr<Block<T>>,
}

/// An unbounded lock-free MPMC FIFO queue.
///
/// ```
/// use crossbeam_queue::SegQueue;
///
/// let q = SegQueue::new();
/// q.push(1);
/// q.push(2);
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None);
/// ```
pub struct SegQueue<T> {
    head: CachePadded<Position<T>>,
    tail: CachePadded<Position<T>>,
    spares: CachePadded<SparePool<T>>,
    _marker: PhantomData<T>,
}

// SAFETY: the queue moves owned `T` values between threads through raw
// blocks; the per-slot state protocol gives each value exactly one reader.
unsafe impl<T: Send> Send for SegQueue<T> {}
unsafe impl<T: Send> Sync for SegQueue<T> {}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SegQueue<T> {
    /// Creates an empty queue. The first block is allocated lazily by the
    /// first push.
    pub fn new() -> Self {
        SegQueue {
            head: CachePadded::new(Position {
                index: AtomicUsize::new(0),
                block: AtomicPtr::new(ptr::null_mut()),
            }),
            tail: CachePadded::new(Position {
                index: AtomicUsize::new(0),
                block: AtomicPtr::new(ptr::null_mut()),
            }),
            spares: CachePadded::new(SparePool::new()),
            _marker: PhantomData,
        }
    }

    /// A fresh or recycled block, ready for installation.
    fn alloc_block(&self) -> Box<Block<T>> {
        self.spares.take().unwrap_or_else(Block::new)
    }

    /// Pushes `value` onto the back of the queue.
    pub fn push(&self, value: T) {
        let mut backoff = Backoff::new();
        let mut tail = self.tail.index.load(Ordering::Acquire);
        let mut block = self.tail.block.load(Ordering::Acquire);
        let mut next_block: Option<Box<Block<T>>> = None;

        loop {
            let offset = tail % LAP;
            if offset == BLOCK_CAP {
                // The push that claimed the previous slot is installing the
                // next block; wait for it to advance the index.
                backoff.snooze();
                tail = self.tail.index.load(Ordering::Acquire);
                block = self.tail.block.load(Ordering::Acquire);
                continue;
            }

            // About to claim this block's last slot: pre-allocate the next
            // block so the post-CAS installation is a couple of stores.
            if offset + 1 == BLOCK_CAP && next_block.is_none() {
                next_block = Some(self.alloc_block());
            }

            // First push ever: race to install the initial block.
            if block.is_null() {
                let new = Box::into_raw(self.alloc_block());
                if self
                    .tail
                    .block
                    .compare_exchange(ptr::null_mut(), new, Ordering::Release, Ordering::Relaxed)
                    .is_ok()
                {
                    self.head.block.store(new, Ordering::Release);
                    block = new;
                } else {
                    // Lost the race; keep the allocation for the boundary.
                    next_block = Some(unsafe { Box::from_raw(new) });
                    tail = self.tail.index.load(Ordering::Acquire);
                    block = self.tail.block.load(Ordering::Acquire);
                    continue;
                }
            }

            // Claim index `tail` (slot `offset` of `block`). SeqCst on
            // success so pop's fence + relaxed `tail` load observes it.
            match self.tail.index.compare_exchange_weak(
                tail,
                tail + 1,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                Ok(_) => unsafe {
                    // Claimed the last slot: install the next block, then
                    // bump the index past the boundary value so spinning
                    // pushers can proceed.
                    if offset + 1 == BLOCK_CAP {
                        let next = Box::into_raw(next_block.take().unwrap());
                        self.tail.block.store(next, Ordering::Release);
                        self.tail.index.fetch_add(1, Ordering::Release);
                        (*block).next.store(next, Ordering::Release);
                    }

                    // Write the value, then publish it with the WRITE bit.
                    let slot = (*block).slots.get_unchecked(offset);
                    slot.value.get().write(MaybeUninit::new(value));
                    slot.state.fetch_or(WRITE, Ordering::Release);

                    // A pre-allocation left over from a lost race (the CAS
                    // retried onto a non-boundary slot) goes back to the
                    // spare list instead of the allocator.
                    if let Some(spare) = next_block.take() {
                        self.spares.put(Box::into_raw(spare));
                    }
                    return;
                },
                Err(t) => {
                    tail = t;
                    block = self.tail.block.load(Ordering::Acquire);
                    backoff.spin();
                }
            }
        }
    }

    /// Pops the front element, or `None` if the queue is empty.
    pub fn pop(&self) -> Option<T> {
        let mut backoff = Backoff::new();
        let mut head = self.head.index.load(Ordering::Acquire);
        let mut block = self.head.block.load(Ordering::Acquire);

        loop {
            let offset = head % LAP;
            if offset == BLOCK_CAP {
                // The pop that claimed the previous slot is advancing the
                // head to the next block; wait for it.
                backoff.snooze();
                head = self.head.index.load(Ordering::Acquire);
                block = self.head.block.load(Ordering::Acquire);
                continue;
            }

            // Emptiness check: the fence orders this load after our head
            // load, pairing with the SeqCst index CAS in `push` — if a
            // value was pushed before we started, we see `tail` past it.
            // Both indexes walk the same sequence, so equality means every
            // claimed slot has already been popped.
            atomic::fence(Ordering::SeqCst);
            let tail = self.tail.index.load(Ordering::Relaxed);
            if head == tail {
                return None;
            }

            if block.is_null() {
                // A push has claimed index 0 but is still installing the
                // first block.
                backoff.snooze();
                head = self.head.index.load(Ordering::Acquire);
                block = self.head.block.load(Ordering::Acquire);
                continue;
            }

            // Claim index `head` (slot `offset` of `block`).
            match self.head.index.compare_exchange_weak(
                head,
                head + 1,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                Ok(_) => unsafe {
                    // Claimed the last slot: move the head to the next
                    // block (installed by the push that claimed that slot),
                    // skipping the boundary index value.
                    if offset + 1 == BLOCK_CAP {
                        let next = (*block).wait_next();
                        self.head.block.store(next, Ordering::Release);
                        self.head.index.store(head + 2, Ordering::Release);
                    }

                    let slot = (*block).slots.get_unchecked(offset);
                    slot.wait_write();
                    let value = slot.value.get().read().assume_init();

                    // Reclamation: the last slot's popper sweeps the block;
                    // earlier poppers mark READ, inheriting the sweep if a
                    // DESTROY already beat them to this slot.
                    if offset + 1 == BLOCK_CAP {
                        Block::destroy(block, 0, &self.spares);
                    } else if slot.state.fetch_or(READ, Ordering::AcqRel) & DESTROY != 0 {
                        Block::destroy(block, offset + 1, &self.spares);
                    }

                    return Some(value);
                },
                Err(h) => {
                    head = h;
                    block = self.head.block.load(Ordering::Acquire);
                    backoff.spin();
                }
            }
        }
    }

    /// Number of elements currently queued (snapshot).
    pub fn len(&self) -> usize {
        loop {
            // Load tail before head, and re-check tail so the pair is a
            // consistent snapshot (head never passes tail).
            let mut tail = self.tail.index.load(Ordering::SeqCst);
            let mut head = self.head.index.load(Ordering::SeqCst);
            if self.tail.index.load(Ordering::SeqCst) == tail {
                // An index resting on a block boundary is morally at the
                // next block's first slot.
                if tail % LAP == BLOCK_CAP {
                    tail += 1;
                }
                if head % LAP == BLOCK_CAP {
                    head += 1;
                }
                // Rebase to head's lap, then discount the boundary values
                // between the two indexes (one per whole lap below tail).
                let lap = head / LAP;
                tail -= lap * LAP;
                head -= lap * LAP;
                return tail - head - tail / LAP;
            }
        }
    }

    /// Whether the queue is currently empty (snapshot).
    pub fn is_empty(&self) -> bool {
        let head = self.head.index.load(Ordering::SeqCst);
        let tail = self.tail.index.load(Ordering::SeqCst);
        head == tail
    }

    /// Approximate number of spent blocks parked for reuse (diagnostics;
    /// this is an extension beyond the real crate's API).
    ///
    /// Steady-state traffic recirculates blocks through this list instead
    /// of the allocator, so after draining a multi-block queue the count
    /// is nonzero and subsequent laps allocate nothing.
    pub fn spare_blocks(&self) -> usize {
        self.spares.approx_len()
    }
}

impl<T> Drop for SegQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: walk the unclaimed indexes, dropping values and
        // freeing blocks as boundaries are crossed.
        let mut head = *self.head.index.get_mut();
        let tail = *self.tail.index.get_mut();
        let mut block = *self.head.block.get_mut();

        unsafe {
            while head != tail {
                let offset = head % LAP;
                if offset < BLOCK_CAP {
                    let slot = (*block).slots.get_unchecked(offset);
                    (*slot.value.get()).assume_init_drop();
                } else {
                    let next = *(*block).next.get_mut();
                    drop(Box::from_raw(block));
                    block = next;
                }
                head += 1;
            }
            if !block.is_null() {
                drop(Box::from_raw(block));
            }
        }
    }
}

impl<T> fmt::Debug for SegQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegQueue").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_order_across_blocks() {
        // Enough elements to cross several block boundaries.
        let q = SegQueue::new();
        let n = LAP * 5 + 7;
        for i in 0..n {
            q.push(i);
        }
        assert_eq!(q.len(), n);
        for i in 0..n {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn len_tracks_interleaved_push_pop() {
        // Walk push/pop through boundary offsets to exercise the lap
        // arithmetic in len().
        let q = SegQueue::new();
        let mut expect = 0usize;
        for round in 0..(LAP * 3) {
            for i in 0..3 {
                q.push(round * 3 + i);
                expect += 1;
                assert_eq!(q.len(), expect);
            }
            assert!(q.pop().is_some());
            expect -= 1;
            assert_eq!(q.len(), expect);
        }
        while q.pop().is_some() {
            expect -= 1;
            assert_eq!(q.len(), expect);
        }
        assert_eq!(expect, 0);
    }

    #[test]
    fn drops_unpopped_elements_and_blocks() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let n = LAP * 2 + 5;
        {
            let q = SegQueue::new();
            for _ in 0..n {
                q.push(Counted(Arc::clone(&drops)));
            }
            for _ in 0..7 {
                drop(q.pop());
            }
            assert_eq!(drops.load(Ordering::Relaxed), 7);
        }
        assert_eq!(drops.load(Ordering::Relaxed), n, "queue drop releases the remainder");
    }

    #[test]
    fn spent_blocks_are_recycled_not_freed() {
        let q = SegQueue::new();
        assert_eq!(q.spare_blocks(), 0);
        // Fill and drain enough laps that several blocks are retired.
        let n = LAP * 4;
        for i in 0..n {
            q.push(i);
        }
        while q.pop().is_some() {}
        let parked = q.spare_blocks();
        assert!(parked >= 3, "draining {n} elements should park blocks, got {parked}");
        // A second identical lap must run entirely out of the spare list:
        // the pool population never grows past the first lap's high-water
        // mark (blocks recirculate instead of being reallocated).
        for i in 0..n {
            q.push(i);
        }
        for i in 0..n {
            assert_eq!(q.pop(), Some(i), "recycled blocks must preserve FIFO order");
        }
        assert!(
            q.spare_blocks() <= parked + 1,
            "steady-state laps recirculate blocks: {} parked after, {parked} before",
            q.spare_blocks()
        );
    }

    #[test]
    fn recycled_blocks_survive_concurrent_churn() {
        // Hammer push/pop across block boundaries from several threads so
        // retirement (destroy sweep → spare list) races re-issue (push
        // drawing a spare) constantly; conservation proves no block is
        // handed out before its last reader finished.
        let q = SegQueue::new();
        let threads = 4;
        let per = LAP * 200;
        let popped = AtomicUsize::new(0);
        thread::scope(|s| {
            for t in 0..threads {
                let (q, popped) = (&q, &popped);
                s.spawn(move || {
                    let mut got = 0usize;
                    for i in 0..per {
                        q.push(t * per + i);
                        if i % 3 == 0 && q.pop().is_some() {
                            got += 1;
                        }
                    }
                    while q.pop().is_some() {
                        got += 1;
                    }
                    popped.fetch_add(got, Ordering::Relaxed);
                });
            }
        });
        // Residue sweep: late exits may leave elements behind.
        let mut residue = 0;
        while q.pop().is_some() {
            residue += 1;
        }
        assert_eq!(popped.load(Ordering::Relaxed) + residue, threads * per);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_conservation() {
        let q = SegQueue::new();
        let producers = 4;
        let per = 1000;
        let popped = AtomicUsize::new(0);
        thread::scope(|s| {
            for p in 0..producers {
                let q = &q;
                s.spawn(move || {
                    for i in 0..per {
                        q.push(p * per + i);
                    }
                });
            }
            for _ in 0..producers {
                let q = &q;
                let popped = &popped;
                s.spawn(move || {
                    let mut got = 0;
                    while got < per {
                        if q.pop().is_some() {
                            got += 1;
                        } else {
                            thread::yield_now();
                        }
                    }
                    popped.fetch_add(got, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(popped.load(Ordering::Relaxed), producers * per);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_multiset_conservation() {
        // Stronger than counting: the popped *values* must be exactly the
        // pushed multiset, each exactly once.
        let q = SegQueue::new();
        let producers = 4;
        let consumers = 4;
        let per = 2000usize;
        let total = producers * per;
        let seen: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        let taken = AtomicUsize::new(0);
        thread::scope(|s| {
            for p in 0..producers {
                let q = &q;
                s.spawn(move || {
                    for i in 0..per {
                        q.push(p * per + i);
                    }
                });
            }
            for _ in 0..consumers {
                let q = &q;
                let seen = &seen;
                let taken = &taken;
                s.spawn(move || loop {
                    if let Some(v) = q.pop() {
                        seen[v].fetch_add(1, Ordering::Relaxed);
                        if taken.fetch_add(1, Ordering::Relaxed) + 1 == total {
                            return;
                        }
                    } else if taken.load(Ordering::Relaxed) >= total {
                        return;
                    } else {
                        thread::yield_now();
                    }
                });
            }
        });
        for (v, count) in seen.iter().enumerate() {
            assert_eq!(count.load(Ordering::Relaxed), 1, "value {v} popped exactly once");
        }
        assert!(q.is_empty());
    }
}
