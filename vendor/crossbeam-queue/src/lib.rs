//! Offline shim for the `crossbeam-queue` crate.
//!
//! Provides [`SegQueue`] with the real crate's API. The implementation is a
//! mutex-protected `VecDeque` rather than a lock-free segmented queue — the
//! workspace uses `SegQueue` only as a *centralized work-list baseline*
//! whose defining property is FIFO MPMC correctness, not lock-freedom.
//! Swap the path dependency for the real crate when a registry is available
//! (and before quoting lock-free baseline numbers).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Mutex, PoisonError};

/// An unbounded MPMC FIFO queue.
pub struct SegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SegQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        SegQueue { inner: Mutex::new(VecDeque::new()) }
    }

    /// Pushes `value` onto the back of the queue.
    pub fn push(&self, value: T) {
        self.lock().push_back(value);
    }

    /// Pops the front element, or `None` if the queue is empty.
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_front()
    }

    /// Number of elements currently queued (snapshot).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the queue is currently empty (snapshot).
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> fmt::Debug for SegQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegQueue").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_conservation() {
        let q = SegQueue::new();
        let producers = 4;
        let per = 1000;
        let popped = std::sync::atomic::AtomicUsize::new(0);
        thread::scope(|s| {
            for p in 0..producers {
                let q = &q;
                s.spawn(move || {
                    for i in 0..per {
                        q.push(p * per + i);
                    }
                });
            }
            for _ in 0..producers {
                let q = &q;
                let popped = &popped;
                s.spawn(move || {
                    let mut got = 0;
                    while got < per {
                        if q.pop().is_some() {
                            got += 1;
                        } else {
                            thread::yield_now();
                        }
                    }
                    popped.fetch_add(got, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        assert_eq!(popped.load(std::sync::atomic::Ordering::Relaxed), producers * per);
        assert!(q.is_empty());
    }
}
