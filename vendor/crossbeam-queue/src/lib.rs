//! Offline stand-in for the `crossbeam-queue` crate — implemented for real.
//!
//! Earlier revisions shimmed [`SegQueue`] with a mutex-protected `VecDeque`;
//! every free-list hop in the transfer layer paid a lock round trip, and the
//! "lock-free" centralized baseline carried an asterisk. This crate now
//! hand-rolls the lock-free structures themselves (no external
//! dependencies), so the workspace's lock-free numbers are honest:
//!
//! * [`SegQueue`] — unbounded MPMC FIFO over linked fixed-size blocks,
//!   following the crossbeam design: per-slot state words coordinate
//!   writers, readers, and block reclamation (no epoch collector needed).
//! * [`ArrayQueue`] — bounded MPMC FIFO over a fixed ring of slots with
//!   per-slot sequence stamps (Vyukov's bounded queue).
//! * [`Stack`] — an unordered Treiber stack with a generation-tagged head
//!   (ABA-safe) and a type-stable internal node cache, for free-list paths
//!   where LIFO reuse order is a feature, not a bug. This type is an
//!   extension beyond the real crate's API, used by `cpool`'s transfer
//!   layer.
//!
//! All three expose the same `new / push / pop / len / is_empty` surface
//! (modulo `ArrayQueue::push` returning the value on a full ring), so call
//! sites can switch between them without churn. The memory-ordering
//! arguments for each structure live next to the code; the README's
//! "lock-free internals" section summarizes them.

mod array_queue;
mod backoff;
mod pad;
mod seg_queue;
mod stack;

pub use array_queue::ArrayQueue;
pub use seg_queue::SegQueue;
pub use stack::Stack;
