//! Exponential backoff for CAS retry loops (a minimal stand-in for
//! `crossbeam_utils::Backoff`).

use std::hint;
use std::thread;

/// Spins double the previous amount each step, up to `1 << SPIN_LIMIT`
/// spin-loop hints per call, before `snooze` starts yielding to the OS.
const SPIN_LIMIT: u32 = 6;

pub(crate) struct Backoff {
    step: u32,
}

impl Backoff {
    pub(crate) fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Backs off after a failed CAS: the contended word *did* change, so
    /// progress is being made somewhere — burn a few cycles and retry.
    pub(crate) fn spin(&mut self) {
        for _ in 0..1u32 << self.step.min(SPIN_LIMIT) {
            hint::spin_loop();
        }
        if self.step <= SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// Backs off while waiting for *another thread's* pending store (a
    /// block installation, a slot write). After the spin budget is spent,
    /// yields the time slice so a descheduled writer can run.
    pub(crate) fn snooze(&mut self) {
        if self.step <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                hint::spin_loop();
            }
            self.step += 1;
        } else {
            thread::yield_now();
        }
    }
}
