//! Bounded lock-free MPMC FIFO queue over a fixed ring of slots.
//!
//! This is Vyukov's bounded MPMC queue (also the crossbeam `ArrayQueue`
//! design). Each slot carries a *sequence stamp*; `head` and `tail` are
//! ever-increasing indexes that encode a lap number alongside the slot
//! offset. A slot is writable when its stamp equals the tail that maps to
//! it, readable when the stamp is one past the head that maps to it — so a
//! single `Acquire` stamp load tells a thread whether the slot is ready
//! without inspecting the other end of the queue, and the stamp store
//! (`Release`) publishes the value write (or the vacancy) it follows.
//!
//! Full and empty are decided the same way as `SegQueue` emptiness: a
//! `SeqCst` fence followed by a relaxed load of the *other* index, paired
//! with the `SeqCst` index CASes, proves the condition was true at a real
//! instant rather than a stale snapshot.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{self, AtomicUsize, Ordering};

use crate::backoff::Backoff;
use crate::pad::CachePadded;

struct Slot<T> {
    /// Sequence stamp: `tail` value when vacant for that tail, `tail + 1`
    /// once written, `head + one_lap` once read back out.
    stamp: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free MPMC FIFO queue with exact capacity.
///
/// `push` fails (returning the value) when the ring is full, which is what
/// makes it a fit for *bounded* hand-off paths; order is FIFO.
///
/// ```
/// use crossbeam_queue::ArrayQueue;
///
/// let q = ArrayQueue::new(2);
/// assert_eq!(q.push(1), Ok(()));
/// assert_eq!(q.push(2), Ok(()));
/// assert_eq!(q.push(3), Err(3));
/// assert_eq!(q.pop(), Some(1));
/// ```
pub struct ArrayQueue<T> {
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    buffer: Box<[Slot<T>]>,
    cap: usize,
    /// Index distance between the same slot on consecutive laps: the
    /// smallest power of two strictly greater than `cap`, so lap and
    /// offset split on a bit boundary.
    one_lap: usize,
}

// SAFETY: the queue moves owned `T` values between threads through the
// ring; the stamp protocol gives each value exactly one reader.
unsafe impl<T: Send> Send for ArrayQueue<T> {}
unsafe impl<T: Send> Sync for ArrayQueue<T> {}

impl<T> ArrayQueue<T> {
    /// Creates a queue holding at most `cap` elements.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "capacity must be non-zero");
        let buffer: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                stamp: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        ArrayQueue {
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            buffer,
            cap,
            one_lap: (cap + 1).next_power_of_two(),
        }
    }

    /// Pushes `value` onto the back, or returns it if the queue is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut backoff = Backoff::new();
        let mut tail = self.tail.load(Ordering::Relaxed);

        loop {
            let index = tail & (self.one_lap - 1);
            let lap = tail & !(self.one_lap - 1);
            // The ring wraps at `cap`, not at the (power-of-two) lap size,
            // so capacity is exact.
            let new_tail =
                if index + 1 < self.cap { tail + 1 } else { lap.wrapping_add(self.one_lap) };
            let slot = &self.buffer[index];
            let stamp = slot.stamp.load(Ordering::Acquire);

            if tail == stamp {
                // Vacant for this lap: claim it.
                match self.tail.compare_exchange_weak(
                    tail,
                    new_tail,
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave us exclusive write access to
                        // this slot for this lap.
                        unsafe { slot.value.get().write(MaybeUninit::new(value)) };
                        slot.stamp.store(tail + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(t) => {
                        tail = t;
                        backoff.spin();
                    }
                }
            } else if stamp.wrapping_add(self.one_lap) == tail + 1 {
                // The slot was written a full lap ago and not yet read:
                // possibly full. The fence + head load (paired with the
                // SeqCst CASes) decides for real.
                atomic::fence(Ordering::SeqCst);
                let head = self.head.load(Ordering::Relaxed);
                if head.wrapping_add(self.one_lap) == tail {
                    return Err(value);
                }
                backoff.spin();
                tail = self.tail.load(Ordering::Relaxed);
            } else {
                // The claiming pusher has not finished its stamp store yet.
                backoff.snooze();
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops the front element, or `None` if the queue is empty.
    pub fn pop(&self) -> Option<T> {
        let mut backoff = Backoff::new();
        let mut head = self.head.load(Ordering::Relaxed);

        loop {
            let index = head & (self.one_lap - 1);
            let lap = head & !(self.one_lap - 1);
            let new_head =
                if index + 1 < self.cap { head + 1 } else { lap.wrapping_add(self.one_lap) };
            let slot = &self.buffer[index];
            let stamp = slot.stamp.load(Ordering::Acquire);

            if head + 1 == stamp {
                // Written for this lap: claim it.
                match self.head.compare_exchange_weak(
                    head,
                    new_head,
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave us exclusive read access to
                        // this slot for this lap.
                        let value = unsafe { slot.value.get().read().assume_init() };
                        // Mark the slot vacant for the *next* lap's pusher.
                        slot.stamp.store(head.wrapping_add(self.one_lap), Ordering::Release);
                        return Some(value);
                    }
                    Err(h) => {
                        head = h;
                        backoff.spin();
                    }
                }
            } else if stamp == head {
                // Not yet written this lap: possibly empty.
                atomic::fence(Ordering::SeqCst);
                let tail = self.tail.load(Ordering::Relaxed);
                if tail == head {
                    return None;
                }
                backoff.spin();
                head = self.head.load(Ordering::Relaxed);
            } else {
                // The claiming popper has not finished its stamp store yet.
                backoff.snooze();
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Maximum number of elements the queue holds.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of elements currently queued (snapshot).
    pub fn len(&self) -> usize {
        loop {
            let tail = self.tail.load(Ordering::SeqCst);
            let head = self.head.load(Ordering::SeqCst);
            // Re-check tail so the pair is a consistent snapshot.
            if self.tail.load(Ordering::SeqCst) == tail {
                let hix = head & (self.one_lap - 1);
                let tix = tail & (self.one_lap - 1);
                return if hix < tix {
                    tix - hix
                } else if hix > tix {
                    self.cap - hix + tix
                } else if tail == head {
                    0
                } else {
                    self.cap
                };
            }
        }
    }

    /// Whether the queue is currently empty (snapshot).
    pub fn is_empty(&self) -> bool {
        let head = self.head.load(Ordering::SeqCst);
        let tail = self.tail.load(Ordering::SeqCst);
        tail == head
    }

    /// Whether the queue is currently full (snapshot).
    pub fn is_full(&self) -> bool {
        let tail = self.tail.load(Ordering::SeqCst);
        let head = self.head.load(Ordering::SeqCst);
        head.wrapping_add(self.one_lap) == tail
    }
}

impl<T> Drop for ArrayQueue<T> {
    fn drop(&mut self) {
        if std::mem::needs_drop::<T>() {
            let head = *self.head.get_mut();
            let hix = head & (self.one_lap - 1);
            for i in 0..self.len() {
                let index = if hix + i < self.cap { hix + i } else { hix + i - self.cap };
                // SAFETY: exclusive access; the slots in [head, head+len)
                // hold initialized values.
                unsafe { (*self.buffer[index].value.get()).assume_init_drop() };
            }
        }
    }
}

impl<T> fmt::Debug for ArrayQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArrayQueue").field("len", &self.len()).field("cap", &self.cap).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_with_exact_capacity() {
        // Non-power-of-two capacity exercises the manual wrap.
        let q = ArrayQueue::new(3);
        assert_eq!(q.capacity(), 3);
        for lap in 0..5 {
            assert_eq!(q.push(lap * 10 + 1), Ok(()));
            assert_eq!(q.push(lap * 10 + 2), Ok(()));
            assert_eq!(q.push(lap * 10 + 3), Ok(()));
            assert_eq!(q.push(99), Err(99), "full at exactly cap");
            assert!(q.is_full());
            assert_eq!(q.len(), 3);
            assert_eq!(q.pop(), Some(lap * 10 + 1));
            assert_eq!(q.pop(), Some(lap * 10 + 2));
            assert_eq!(q.pop(), Some(lap * 10 + 3));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn len_tracks_wrapped_occupancy() {
        let q = ArrayQueue::new(5);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        q.pop();
        q.pop();
        q.push(9).unwrap();
        q.push(10).unwrap();
        q.push(11).unwrap(); // wrapped past the ring edge
        assert_eq!(q.len(), 5);
        assert!(q.is_full());
    }

    #[test]
    fn drops_remaining_values() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let q = ArrayQueue::new(4);
            for _ in 0..4 {
                q.push(Counted(Arc::clone(&drops))).ok().unwrap();
            }
            drop(q.pop());
            q.push(Counted(Arc::clone(&drops))).ok().unwrap(); // wrap
            assert_eq!(drops.load(Ordering::Relaxed), 1);
        }
        assert_eq!(drops.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn concurrent_multiset_conservation() {
        let q = ArrayQueue::new(7); // small odd capacity: constant wrapping
        let producers = 4;
        let consumers = 4;
        let per = 2000usize;
        let total = producers * per;
        let seen: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        let taken = AtomicUsize::new(0);
        thread::scope(|scope| {
            for p in 0..producers {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..per {
                        let mut v = p * per + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..consumers {
                let q = &q;
                let seen = &seen;
                let taken = &taken;
                scope.spawn(move || loop {
                    if let Some(v) = q.pop() {
                        seen[v].fetch_add(1, Ordering::Relaxed);
                        if taken.fetch_add(1, Ordering::Relaxed) + 1 == total {
                            return;
                        }
                    } else if taken.load(Ordering::Relaxed) >= total {
                        return;
                    } else {
                        thread::yield_now();
                    }
                });
            }
        });
        for (v, count) in seen.iter().enumerate() {
            assert_eq!(count.load(Ordering::Relaxed), 1, "value {v} popped exactly once");
        }
        assert!(q.is_empty());
    }
}
