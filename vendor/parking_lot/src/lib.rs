//! Offline shim for the `parking_lot` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! subset of `parking_lot` the workspace actually uses is re-implemented
//! here on top of `std::sync`. Semantics match `parking_lot` where they
//! matter to callers:
//!
//! * `Mutex::lock` returns the guard directly (no `Result`); a poisoned
//!   mutex is recovered rather than propagated, matching `parking_lot`'s
//!   absence of poisoning.
//! * `Condvar::wait` takes `&mut MutexGuard` instead of consuming it.
//!
//! Swap this path dependency for the real crate when a registry is
//! available; no call site needs to change.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s panic-safe (non-poisoning)
/// `lock` signature.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can temporarily
/// take it (std's `wait` consumes and returns the guard).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard always holds the lock outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard always holds the lock outside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Wakes one thread blocked in [`wait`](Self::wait).
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all threads blocked in [`wait`](Self::wait).
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically releases the lock and blocks until notified, reacquiring
    /// the lock before returning (the guard is valid throughout from the
    /// caller's perspective).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard holds the lock on entry");
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        t.join().unwrap();
    }
}
