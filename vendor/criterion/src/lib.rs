//! Offline shim for the `criterion` crate.
//!
//! Keeps the workspace's benches compiling and runnable without a registry.
//! Measurement is deliberately simple — per benchmark it runs a short
//! warm-up, then `sample_size` timed samples, and prints the median
//! nanoseconds per iteration — no outlier analysis, no HTML reports, no
//! statistical comparison against saved baselines. Swap the path dependency
//! for the real crate before quoting numbers anywhere.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim only distinguishes
/// batch sizes coarsely; all variants are accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: many iterations per batch.
    SmallInput,
    /// Large input: few iterations per batch.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark (recorded, printed with results).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark id: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// Measurement settings plus the entry point benches receive.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for CLI compatibility. The shim recognizes exactly one
    /// flag of the real crate: `--test` (run every benchmark once, no
    /// warm-up or sampling — CI smoke mode); other options are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let settings = self.clone();
        run_benchmark(&settings, &id.into_benchmark_id(), None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
    throughput: Option<Throughput>,
}

impl fmt::Debug for BenchmarkGroup<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BenchmarkGroup").field("name", &self.name).finish_non_exhaustive()
    }
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Overrides the measurement duration for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let settings = self.settings();
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&settings, &id, self.throughput, f);
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}

    fn settings(&self) -> Criterion {
        let mut settings = self.criterion.clone();
        if let Some(n) = self.sample_size {
            settings.sample_size = n;
        }
        if let Some(d) = self.measurement_time {
            settings.measurement_time = d;
        }
        settings
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples.capacity() {
            let inputs: Vec<I> = (0..self.iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// Whether the binary was invoked with `--test` (cargo bench -- --test):
/// run each benchmark once to prove it executes, skip all measurement.
fn test_mode() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|arg| arg == "--test"))
}

fn run_benchmark(
    settings: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    if test_mode() {
        let mut once = Bencher { iters_per_sample: 1, samples: Vec::with_capacity(1) };
        f(&mut once);
        println!("Testing {id} ... ok");
        return;
    }
    // Calibration pass: find how many iterations fit one sample's share of
    // the measurement budget.
    let mut calibrate = Bencher { iters_per_sample: 1, samples: Vec::with_capacity(1) };
    f(&mut calibrate);
    let per_iter = calibrate.samples.first().copied().unwrap_or(Duration::from_nanos(1));
    let budget = settings.measurement_time.as_nanos().max(1) / settings.sample_size as u128;
    let iters = (budget / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    // Warm-up.
    let warm_start = Instant::now();
    while warm_start.elapsed() < settings.warm_up_time {
        let mut warm =
            Bencher { iters_per_sample: iters.min(1000), samples: Vec::with_capacity(1) };
        f(&mut warm);
    }

    // Measurement.
    let mut bencher =
        Bencher { iters_per_sample: iters, samples: Vec::with_capacity(settings.sample_size) };
    f(&mut bencher);
    let mut per_iter_ns: Vec<f64> =
        bencher.samples.iter().map(|d| d.as_nanos() as f64 / iters as f64).collect();
    per_iter_ns.sort_by(f64::total_cmp);
    let median = per_iter_ns.get(per_iter_ns.len() / 2).copied().unwrap_or(f64::NAN);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (median * 1e-9);
            println!("{id}: {median:.1} ns/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (median * 1e-9);
            println!("{id}: {median:.1} ns/iter ({rate:.0} B/s)");
        }
        None => println!("{id}: {median:.1} ns/iter"),
    }
}

/// Declares a group of benchmark functions, optionally with a configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
