//! The [`Strategy`] trait and the combinators the workspace uses.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy is simply a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: fmt::Debug, F> fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Map").field("source", &self.source).finish_non_exhaustive()
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Union").field("options", &self.options.len()).finish()
    }
}

impl<T> Union<T> {
    /// Creates a union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let pick = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[pick].new_value(rng)
    }
}

/// Strategy backed by a sampling closure (the `prop_compose!` backend).
pub struct FnStrategy<F> {
    f: F,
}

impl<F> fmt::Debug for FnStrategy<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnStrategy").finish_non_exhaustive()
    }
}

impl<F> FnStrategy<F> {
    /// Wraps a sampling function.
    pub fn new<T>(f: F) -> Self
    where
        F: Fn(&mut TestRng) -> T,
    {
        FnStrategy { f }
    }
}

impl<T, F> Strategy for FnStrategy<F>
where
    F: Fn(&mut TestRng) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty strategy range");
        start + rng.next_f64() * (end - start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}
