//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`Strategy`](strategy::Strategy) trait over ranges / tuples / `Just` / mapped and
//! composed strategies, `prop::collection::vec`, `prop::bool::ANY`,
//! [`any`](arbitrary::any), and the `proptest!`, `prop_compose!`,
//! `prop_oneof!`, `prop_assert*!` and `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the failing values'
//!   `Debug` rendering un-minimized.
//! * **Deterministic seeding.** Each test derives its RNG stream from the
//!   test name and case index, so failures reproduce exactly across runs.
//! * Default case count is 64 (the real crate's 256), keeping `cargo test`
//!   turnaround reasonable for the multi-threaded properties.
//!
//! Swap the path dependency for the real crate when a registry is
//! available; call sites need no changes.

pub mod strategy;
pub mod test_runner;

/// Value-generation entry points (`any::<T>()`).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyStrategy<T> {
        _marker: PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for "any `T`".
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy { _marker: PhantomData }
    }
}

/// Strategies over `bool` (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true` and `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// A uniformly random boolean.
    pub const ANY: BoolAny = BoolAny;
}

/// Strategies over collections (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing a `Vec` of values drawn from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// The conventional glob import for proptest users.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Fails the current test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), left, right,
        );
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`: {}\n  both: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), left,
        );
    }};
}

/// Rejects the current test case (it is re-drawn, not counted as a failure)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: `fn name(binding in strategy, ...) { body }`.
///
/// Accepts an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            @config($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@config($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_proptest(&$config, stringify!($name), |rng| {
                $(let $binding = $crate::strategy::Strategy::new_value(&($strategy), rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Defines a function returning a strategy composed from other strategies:
/// `fn name(args)(binding in strategy, ...) -> Type { body }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($fnargs:tt)*)
        ($($binding:pat_param in $strategy:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($fnargs)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $binding = $crate::strategy::Strategy::new_value(&($strategy), rng);)+
                $body
            })
        }
    };
}
