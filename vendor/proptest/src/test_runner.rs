//! Configuration, RNG, and the case-driving loop behind `proptest!`.

use std::fmt;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single test case did not succeed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property does not hold; fails the whole test.
    Fail(String),
    /// The generated inputs violated an assumption; the case is re-drawn.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The deterministic RNG strategies draw from.
///
/// xoshiro256++ seeded from a splitmix64 expansion of (test-name hash,
/// case index), so every run of a given test replays identical cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the RNG for one case of one named test.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut x = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drives one property test: draws cases until `config.cases` succeed.
///
/// # Panics
///
/// Panics when a case fails, or when rejections exhaust the attempt budget
/// (10× the case count).
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut successes = 0u32;
    let mut attempt = 0u64;
    let max_attempts = u64::from(config.cases) * 10;
    while successes < config.cases {
        assert!(
            attempt < max_attempts,
            "proptest {name}: too many rejected cases ({successes}/{} succeeded \
             in {attempt} attempts)",
            config.cases,
        );
        let mut rng = TestRng::for_case(name, attempt);
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "proptest {name}: case {} failed (seed: name={name:?} attempt={}):\n{message}",
                    successes,
                    attempt - 1,
                );
            }
        }
    }
}
