//! The paper's application study in miniature: parallel 3-D tic-tac-toe.
//!
//! Expands the opening game tree of 4×4×4 tic-tac-toe in parallel with the
//! work list backed by a concurrent pool, checks the answer against the
//! sequential minimax, and prints what the pool did. Run with:
//!
//! ```sh
//! cargo run --release --example game_tree          # depth 2 (quick)
//! cargo run --release --example game_tree -- --depth 3   # the paper's 249,984 positions
//! ```

use concurrent_pools::baselines::{PoolWorkList, SharedWorkList};
use concurrent_pools::harness::cli::Args;
use concurrent_pools::ttt::board::Board;
use concurrent_pools::ttt::minimax::minimax;
use concurrent_pools::ttt::parallel::{expand_parallel, ExpansionConfig, WorkItem};
use cpool::{NullTiming, PolicyKind};

fn main() {
    let args = Args::from_env();
    let depth: u8 = args.parse_or("depth", 2);
    let workers: usize = args.parse_or("workers", 8);

    println!("expanding the first {depth} moves of 4x4x4 tic-tac-toe on {workers} workers...");

    // Statically dispatched: the NullTiming model is a type parameter, so
    // the expansion runs on the bare pool with no cost-model indirection.
    // The expansion must charge through the same model the list was built
    // with, hence the clone of one instance.
    let timing = NullTiming::new();
    // The policy is constructed for `workers` segments inside the builder:
    // the count is stated once.
    let list: PoolWorkList<WorkItem> =
        PoolWorkList::new(workers, PolicyKind::Linear, timing.clone(), 1);
    let cfg = ExpansionConfig { depth, eval_work_ns: 0, expand_work_ns: 0, batch_leaves: true };
    let parallel = expand_parallel(&list, workers, &cfg, &timing, None);

    println!(
        "parallel:  best first move = cell {:?}, score {}, {} positions, {:.1} ms wall",
        parallel.best_move,
        parallel.score,
        parallel.leaves,
        parallel.wall_ns as f64 / 1e6
    );

    let seq = minimax(&Board::new(), depth);
    println!(
        "minimax:   best first move = cell {:?}, score {}, {} positions",
        seq.best_move, seq.score, seq.leaves
    );
    assert_eq!(parallel.best_move, seq.best_move, "parallel and sequential agree");
    assert_eq!(parallel.score, seq.score);
    assert_eq!(parallel.leaves, seq.leaves);
    println!("agreement: OK");

    // Workers waited event-driven (parked on the pool's notifier) and the
    // expansion ended via close-on-completion, not by burning search
    // attempts into the abort path.
    assert!(list.is_closed(), "completion closed the work list");

    let stats = list.pool().stats().merged();
    println!(
        "pool traffic: {} adds, {} removes, {} steals, {:.2} elements/steal",
        stats.adds,
        stats.removes,
        stats.steals,
        stats.elements_per_steal().unwrap_or(0.0)
    );
    if depth == 3 {
        assert_eq!(parallel.leaves, concurrent_pools::ttt::PAPER_POSITIONS);
        println!("matches the paper's 249,984 board positions.");
    }
}
