//! Distinguishable elements: a resource allocator built on [`KeyedPool`].
//!
//! The paper's §5 asks "How might pools be extended to handle
//! distinguishable elements?" This example answers with a classic
//! allocation scenario: a cluster hands out three *classes* of resource
//! (CPU slots, GPU slots, and licenses). Workers allocate whichever class
//! their next job needs — served from their local segment when possible,
//! stealing half of a remote bucket of the *same class* otherwise — and
//! release resources back to their own segment, building per-node locality
//! exactly like the plain pool does.
//!
//! ```sh
//! cargo run --release --example keyed_resources
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use concurrent_pools::cpool::{KeyedPool, RemoveError};

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Resource {
    CpuSlot,
    GpuSlot,
    License,
}

fn main() {
    const WORKERS: usize = 8;
    const JOBS_PER_WORKER: usize = 5_000;

    let pool: KeyedPool<Resource, u32> = KeyedPool::new(WORKERS);

    // Seed the cluster inventory through a bootstrap handle: plenty of CPU
    // slots, fewer GPUs, scarce licenses.
    {
        let mut boot = pool.register();
        for id in 0..WORKERS as u32 * 64 {
            boot.add(Resource::CpuSlot, id);
        }
        for id in 0..WORKERS as u32 * 8 {
            boot.add(Resource::GpuSlot, id);
        }
        for id in 0..WORKERS as u32 * 2 {
            boot.add(Resource::License, id);
        }
    }

    let completed = AtomicU64::new(0);
    let starved = AtomicU64::new(0);

    thread::scope(|s| {
        for w in 0..WORKERS {
            let mut h = pool.register();
            let (completed, starved) = (&completed, &starved);
            s.spawn(move || {
                // A deterministic per-worker job mix: mostly CPU, some GPU,
                // occasional license-gated jobs.
                for j in 0..JOBS_PER_WORKER {
                    let class = match (w + j) % 10 {
                        0 => Resource::License,
                        1 | 2 => Resource::GpuSlot,
                        _ => Resource::CpuSlot,
                    };
                    match h.try_remove_key(&class) {
                        Ok(resource_id) => {
                            // "Run" the job, then return the resource to the
                            // local segment: future same-class jobs on this
                            // worker allocate locally.
                            h.add(class, resource_id);
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(RemoveError::Aborted) => {
                            // Every worker was hunting simultaneously: the
                            // class is genuinely exhausted right now.
                            starved.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(err) => {
                            unreachable!("nobody closes or times out here: {err}")
                        }
                    }
                }
            });
        }
    });

    let stats = pool.stats().merged();
    println!("workers:            {WORKERS}");
    println!("jobs completed:     {}", completed.load(Ordering::Relaxed));
    println!("jobs starved:       {}", starved.load(Ordering::Relaxed));
    println!("allocations:        {}", stats.removes);
    println!(
        "steals:             {} ({:.1}% of allocations)",
        stats.steals,
        100.0 * stats.steals as f64 / stats.removes.max(1) as f64
    );
    println!("elements per steal: {:.2}", stats.elements_per_steal().unwrap_or(0.0));
    println!(
        "inventory intact:   {} cpu / {} gpu / {} licenses",
        pool.key_len(&Resource::CpuSlot),
        pool.key_len(&Resource::GpuSlot),
        pool.key_len(&Resource::License),
    );

    // The allocator conserves the inventory exactly.
    assert_eq!(pool.key_len(&Resource::CpuSlot), WORKERS * 64);
    assert_eq!(pool.key_len(&Resource::GpuSlot), WORKERS * 8);
    assert_eq!(pool.key_len(&Resource::License), WORKERS * 2);
}
