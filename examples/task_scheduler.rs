//! Dynamic task scheduling over a concurrent pool — the pool's primary
//! application ("the scheduling of dynamically-created tasks", §4.4).
//!
//! A recursive partition job: each task either splits into two subtasks or
//! does leaf work. Workers pull tasks from the pool, generating new tasks
//! as they go; locality keeps most traffic in each worker's own segment.
//! Idle workers **park** on the pool's notifier (`WaitStrategy::Block`, the
//! work list's default) and are woken by the add edge, and termination is
//! close-on-completion: the all-searching abort still *detects* the end of
//! the computation, but the detecting worker then closes the pool so every
//! parked peer wakes and drains out — no attempt budget is burned waiting.
//! Run with:
//!
//! ```sh
//! cargo run --example task_scheduler
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use concurrent_pools::baselines::{PoolWorkList, SharedWorkList, WorkHandle};
use cpool::{NullTiming, PolicyKind};

/// A slice of work: sum the integers in `lo..hi`.
#[derive(Clone, Copy, Debug)]
struct Task {
    lo: u64,
    hi: u64,
}

const LEAF_SIZE: u64 = 1_000;

fn main() {
    const WORKERS: usize = 8;
    const TOTAL: u64 = 10_000_000;

    // The statically-dispatched NullTiming pool: bare lock/steal code, no
    // cost-model indirection on the hot path. The tree policy is built for
    // WORKERS segments inside the builder — the count is stated once.
    let list: PoolWorkList<Task> =
        PoolWorkList::new(WORKERS, PolicyKind::Tree, NullTiming::new(), 7);
    list.seed(vec![Task { lo: 0, hi: TOTAL }]);

    let sum = AtomicU64::new(0);
    let tasks_run = AtomicU64::new(0);

    let handles: Vec<_> = (0..WORKERS).map(|_| list.register()).collect();
    std::thread::scope(|s| {
        for mut handle in handles {
            let sum = &sum;
            let tasks_run = &tasks_run;
            s.spawn(move || {
                while let Ok(task) = handle.get() {
                    tasks_run.fetch_add(1, Ordering::Relaxed);
                    if task.hi - task.lo <= LEAF_SIZE {
                        let partial: u64 = (task.lo..task.hi).sum();
                        sum.fetch_add(partial, Ordering::Relaxed);
                    } else {
                        let mid = task.lo + (task.hi - task.lo) / 2;
                        // Both halves travel as one batch: one segment lock.
                        handle.put_batch([
                            Task { lo: task.lo, hi: mid },
                            Task { lo: mid, hi: task.hi },
                        ]);
                    }
                }
                // `get` returned Done: either this worker witnessed the
                // terminal state (empty pool, everyone searching) and
                // closed the pool, or a peer did and the close woke us.
            });
        }
    });
    assert!(list.is_closed(), "completion closed the pool");

    let expected = TOTAL * (TOTAL - 1) / 2;
    let computed = sum.load(Ordering::Relaxed);
    println!(
        "sum(0..{TOTAL}) = {computed} ({} tasks across {WORKERS} workers)",
        tasks_run.load(Ordering::Relaxed)
    );
    assert_eq!(computed, expected);
    println!("matches closed form: OK");

    let stats = list.pool().stats().merged();
    println!(
        "pool traffic: {} adds, {} removes, {} steals ({:.2}% of removes)",
        stats.adds,
        stats.removes,
        stats.steals,
        100.0 * stats.steal_fraction().unwrap_or(0.0),
    );
}
