//! What happens to the three search algorithms as remote memory gets
//! slower? (§4.3's delay experiment, in miniature.)
//!
//! Sweeps the artificial remote-access delay under the deterministic
//! virtual-time engine and prints the resulting operation times. The
//! paper's finding reproduces: the tree search never beats the simple
//! algorithms, even when remote accesses are very expensive. Run with:
//!
//! ```sh
//! cargo run --release --example numa_delay
//! ```

use concurrent_pools::harness::figures::delay::{self, SweepWorkload};
use concurrent_pools::harness::figures::Scale;

fn main() {
    let scale = Scale { procs: 16, total_ops: 2000, trials: 3, seed: 1989 };
    let delays_us = [0u64, 10, 100, 1_000];

    println!("sweeping remote delay over {delays_us:?} us (virtual time)...\n");
    let sweep = delay::generate(&scale, SweepWorkload::SparseRandom, &delays_us);
    println!("{}", delay::render(&sweep));

    // The paper's conclusion, checked programmatically:
    let tree = delay::series_for(&sweep, cpool::PolicyKind::Tree);
    let linear = delay::series_for(&sweep, cpool::PolicyKind::Linear);
    let random = delay::series_for(&sweep, cpool::PolicyKind::Random);
    let mut tree_ever_best = false;
    for ((d, t), ((_, l), (_, r))) in tree.iter().zip(linear.iter().zip(random.iter())) {
        if *t < l.min(*r) * 0.98 {
            tree_ever_best = true;
            println!("tree won at delay {d} us!? ({t:.1} vs {:.1})", l.min(*r));
        }
    }
    if !tree_ever_best {
        println!(
            "as in the paper: the tree search never performed better than\n\
             either of the two other search algorithms, at any delay."
        );
    }
}
