//! One thread, many waiting consumers: the waker-based futures layer.
//!
//! A thread-per-blocked-consumer frontend stops scaling long before the
//! pool does; the async layer replaces parked threads with registered
//! wakers, so a single driver thread holds any number of pending
//! `remove_async` futures. This example walks the three ways such a
//! future resolves — satisfied by an add edge, expired by its own
//! deadline, and released terminally by a graceful `close()` — all from
//! one driver thread. Run with:
//!
//! ```sh
//! cargo run --release --example async_consumers
//! ```

use std::thread;
use std::time::Duration;

use concurrent_pools::prelude::*;

/// Drives `fleet` to completion and returns `(ok, timeout, closed)` counts.
fn tally(mut fleet: Fleet<RemoveFuture<VecSegment<u64>, LinearSearch>>) -> (u32, u32, u32) {
    let (mut ok, mut timeout, mut closed) = (0, 0, 0);
    fleet.drive(|_, result| match result {
        Ok(_) => ok += 1,
        Err(RemoveError::Timeout) => timeout += 1,
        Err(RemoveError::Closed) => closed += 1,
        Err(err) => panic!("async removes resolve terminally, got {err}"),
    });
    (ok, timeout, closed)
}

fn main() {
    // ── Phase 1: a burst of work satisfies every waiting future. ──────
    let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(4).build();
    let mut producer = pool.register();
    let frontend = pool.register();

    // One future is just an ordinary value until polled; `block_on` is the
    // smallest driver there is.
    producer.add(0);
    let first = block_on(frontend.remove_async()).expect("element is waiting");
    println!("block_on served element {first}");

    let served = thread::scope(|s| {
        let mut fleet = Fleet::new();
        for _ in 0..32 {
            fleet.spawn(frontend.remove_async());
        }
        // The producer feeds the pool while all 32 futures pend on the
        // driver thread; every add edge wakes the registered wakers.
        s.spawn(move || {
            for v in 1..=32 {
                producer.add(v);
                thread::yield_now();
            }
        });
        tally(fleet)
    });
    assert_eq!(served, (32, 0, 0));
    println!("burst:    32 futures on one thread -> {} served", served.0);

    // ── Phase 2: deadlines resolve futures on a quiet pool. ───────────
    // Nobody is producing, so every `_timeout` future expires; the fleet's
    // tick sweep drives the in-poll deadline checks (no timer wheel).
    let mut fleet = Fleet::new();
    for _ in 0..16 {
        fleet.spawn(frontend.remove_timeout_async(Duration::from_millis(25)));
    }
    let expired = tally(fleet);
    assert_eq!(expired, (0, 16, 0));
    println!("deadline: 16 futures with 25ms budget -> {} timed out", expired.1);

    // ── Phase 3: a graceful close releases the rest. ──────────────────
    // Migration note (from `WaitStrategy::Block`): close semantics carry
    // over unchanged — everything added before the close is still
    // delivered first, then every remaining future resolves `Closed`
    // instead of a parked thread returning it.
    let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(4).build();
    let mut producer = pool.register();
    let frontend = pool.register();
    let drained = thread::scope(|s| {
        let mut fleet = Fleet::new();
        for _ in 0..32 {
            fleet.spawn(frontend.remove_async());
        }
        s.spawn(move || {
            for v in 0..12 {
                producer.add(v);
            }
            producer.close();
        });
        tally(fleet)
    });
    assert_eq!(drained, (12, 0, 20));
    println!(
        "close:    12 adds then close -> {} served, {} released with Closed",
        drained.0, drained.2
    );
}
