//! The §5 hint extension, live: a bursty producer feeding starved workers.
//!
//! One coordinator produces work in bursts with quiet gaps; fifteen workers
//! consume. Between bursts every worker's search laps the pool fruitlessly
//! and posts on the hint board, so the moment the next burst starts, its
//! elements are delivered straight to the starving workers instead of
//! landing in the coordinator's segment to be fought over. The same run
//! without hints shows the cost of that fight: more probes and a longer
//! modelled completion time.
//!
//! ```sh
//! cargo run --release --example hinted_handoff
//! ```

use concurrent_pools::harness::figures::Scale;
use concurrent_pools::harness::{run_experiment, TextTable};
use concurrent_pools::prelude::*;
use concurrent_pools::workload::Workload;
use cpool::PolicyKind;

fn main() {
    // The harshest producer/consumer point of the paper's sweep: a single
    // producer and fifteen consumers (everything every consumer eats must
    // cross the machine).
    let scale = Scale { procs: 16, total_ops: 5000, trials: 5, seed: 2024 };
    let workload =
        Workload::ProducerConsumer { producers: 1, arrangement: Arrangement::Contiguous };

    let mut table = TextTable::new(vec![
        "hints",
        "policy",
        "avg op (us)",
        "probes/trial",
        "donated adds",
        "makespan (ms)",
    ]);

    for policy in [PolicyKind::Linear, PolicyKind::Tree] {
        for hints in [false, true] {
            let mut spec = scale.spec(policy, workload.clone());
            spec.hints = hints;
            let result = run_experiment(&spec);
            let merged = &result.trials[0].merged;
            table.row(vec![
                if hints { "on" } else { "off" }.to_string(),
                policy.to_string(),
                result.summary.avg_op_us.display(0),
                merged.segments_examined.to_string(),
                merged.donated_adds.to_string(),
                result.summary.makespan_ms.display(1),
            ]);
        }
    }

    println!("1 producer / 15 consumers, 16 segments, virtual-time Butterfly model:\n");
    println!("{table}");
    println!(
        "With hints, a worker that laps the pool without finding anything posts\n\
         a mailbox; the producer's next add is delivered straight to it. The\n\
         donations replace the longest searches, so probe counts and the\n\
         modelled completion time drop (Kotz & Ellis 1989, §5 future work)."
    );
}
