//! Quickstart: a concurrent pool shared by four worker threads.
//!
//! Each worker adds work to its local segment and removes from it; when a
//! worker's segment runs dry it steals half of someone else's. Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::thread;

use concurrent_pools::prelude::*;

fn main() {
    const WORKERS: usize = 4;
    const ITEMS_PER_WORKER: usize = 10_000;

    // A pool of u64 payloads, one segment per worker, searched linearly
    // (the builder states the worker count once and wires it into the
    // default linear policy).
    let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(WORKERS).seed(42).build();

    // An intentionally unbalanced start: worker 0's segment gets everything.
    pool.fill_evenly_with(0, |_| 0); // (no-op, shown for API discoverability)

    thread::scope(|s| {
        for w in 0..WORKERS {
            let mut handle = pool.register();
            s.spawn(move || {
                // Only worker 0 produces — one batched insert, one segment
                // lock; the others must steal to eat.
                if w == 0 {
                    handle.add_batch(0..(WORKERS * ITEMS_PER_WORKER) as u64);
                }
                let mut sum = 0u64;
                let mut got = 0usize;
                while got < ITEMS_PER_WORKER {
                    // Blocking remove: transient all-searching aborts are
                    // retried inside the crate, no hand-rolled spin loop.
                    if let Ok(v) = handle.remove(WaitStrategy::Yield) {
                        sum = sum.wrapping_add(v);
                        got += 1;
                    }
                }
                println!(
                    "worker {w}: consumed {got} items (sum {sum}), \
                     {} steals, {} segments examined",
                    handle.stats().steals,
                    handle.stats().segments_examined
                );
            });
        }
    });

    assert_eq!(pool.total_len(), 0);
    let merged = pool.stats().merged();
    println!(
        "\ntotal: {} adds, {} removes, {} steals, {:.1} elements/steal",
        merged.adds,
        merged.removes,
        merged.steals,
        merged.elements_per_steal().unwrap_or(0.0),
    );
}
