//! Quickstart: a concurrent pool shared by four worker threads.
//!
//! Each worker adds work to its local segment and removes from it; when a
//! worker's segment runs dry it steals half of someone else's. Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::thread;

use concurrent_pools::prelude::*;

fn main() {
    const WORKERS: usize = 4;
    const ITEMS_PER_WORKER: usize = 10_000;

    // A pool of u64 payloads, one segment per worker, searched linearly.
    let pool: Pool<VecSegment<u64>, LinearSearch> =
        PoolBuilder::new(WORKERS).seed(42).build_with_policy(LinearSearch::new(WORKERS));

    // An intentionally unbalanced start: worker 0's segment gets everything.
    pool.fill_evenly_with(0, |_| 0); // (no-op, shown for API discoverability)

    thread::scope(|s| {
        for w in 0..WORKERS {
            let mut handle = pool.register();
            s.spawn(move || {
                // Only worker 0 produces; the others must steal to eat.
                if w == 0 {
                    for i in 0..(WORKERS * ITEMS_PER_WORKER) as u64 {
                        handle.add(i);
                    }
                }
                let mut sum = 0u64;
                let mut got = 0usize;
                while got < ITEMS_PER_WORKER {
                    match handle.try_remove() {
                        Ok(v) => {
                            sum = sum.wrapping_add(v);
                            got += 1;
                        }
                        Err(RemoveError::Aborted) => thread::yield_now(),
                    }
                }
                println!(
                    "worker {w}: consumed {got} items (sum {sum}), \
                     {} steals, {} segments examined",
                    handle.stats().steals,
                    handle.stats().segments_examined
                );
            });
        }
    });

    assert_eq!(pool.total_len(), 0);
    let merged = pool.stats().merged();
    println!(
        "\ntotal: {} adds, {} removes, {} steals, {:.1} elements/steal",
        merged.adds,
        merged.removes,
        merged.steals,
        merged.elements_per_steal().unwrap_or(0.0),
    );
}
