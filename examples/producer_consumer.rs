//! The paper's §4.2 effect, live: contiguous producers make consumers
//! bunch up; balanced producers fix it.
//!
//! Runs the producer/consumer workload twice under the deterministic
//! virtual-time engine — once with producers packed together, once spread
//! out — and prints the steal statistics side by side. Run with:
//!
//! ```sh
//! cargo run --release --example producer_consumer
//! ```

use concurrent_pools::harness::figures::Scale;
use concurrent_pools::harness::{run_experiment, TextTable};
use concurrent_pools::prelude::*;
use concurrent_pools::workload::Workload;
use cpool::PolicyKind;

fn main() {
    let scale = Scale { procs: 16, total_ops: 5000, trials: 5, seed: 1989 };
    let producers = 5;

    let mut table = TextTable::new(vec![
        "arrangement",
        "policy",
        "avg op (us)",
        "elements/steal",
        "segments/steal",
        "steals",
    ]);

    for arrangement in [Arrangement::Contiguous, Arrangement::Balanced] {
        for policy in [PolicyKind::Linear, PolicyKind::Tree] {
            let spec = scale.spec(
                policy,
                Workload::ProducerConsumer { producers, arrangement: arrangement.clone() },
            );
            let result = run_experiment(&spec);
            table.row(vec![
                arrangement.to_string(),
                policy.to_string(),
                result.summary.avg_op_us.display(1),
                result.summary.elements_per_steal.display(2),
                result.summary.segments_per_steal.display(2),
                result.summary.steals.display(0),
            ]);
        }
    }

    println!("{producers} producers / {} consumers, 16 segments:\n", 16 - producers);
    println!("{table}");
    println!(
        "Balancing the producers raises elements-per-steal and lowers op time\n\
         (Kotz & Ellis 1989, Figures 3-7)."
    );
}
